// Incremental BFS repair: patching a cached level/parent result after a
// batch of edge insertions instead of recomputing the whole traversal
// (docs/MUTATIONS.md).
//
// Edge insertions can only shorten unit-weight distances, so a complete
// cached traversal stays correct except where an inserted edge opens a
// shortcut: the repair is a monotone wave relaxation seeded from the
// inserted endpoints, processing candidate levels in ascending order.
// Each wave L re-runs the same word-skip sweep the bottom-up kernels use
// (src/bfs/sweep.hpp), but over a "done" bitmap seeded ALL-SET with only
// the pending wave members punched out — so the sweep touches one word
// per 64 vertices between members and lands exactly on the affected
// frontier words. A member is processed when its current level equals the
// wave (stale punches from superseded relaxations are skipped and re-set
// lazily), relaxing its merged-view neighbors to L+1.
//
// Scope contract: repair handles INSERT-ONLY deltas over a COMPLETE
// traversal. Deletions can lengthen distances (monotone relaxation cannot
// raise a level), and a truncated/cancelled traversal has no valid levels
// to relax from — both report `repaired = false` and the caller falls
// back to full recomputation. The differential suite pins repair output
// reference-equal to a from-scratch BFS on the merged graph.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/backward_graph.hpp"
#include "graph/delta_buffer.hpp"
#include "graph/types.hpp"

namespace sembfs {

struct RepairOutcome {
  /// False: the delta/result is outside repair's scope — recompute.
  bool repaired = false;
  const char* reason = "";         ///< why repair declined (when !repaired)
  std::int64_t seeds = 0;          ///< endpoints seeded by inserted edges
  std::int64_t relaxed = 0;        ///< vertices whose level improved
  std::int64_t newly_reached = 0;  ///< previously unreached vertices
  std::int32_t waves = 0;          ///< ascending levels processed
  std::uint64_t words_swept = 0;   ///< sweep words examined
  std::uint64_t words_skipped = 0; ///< saturated words skipped
  double seconds = 0.0;
};

/// Repairs `level`/`parent` (a complete BFS of the base graph from
/// `root`) in place so they match a BFS of the merged view (base +
/// `delta`). `backward` must be the canonical complete-adjacency DRAM
/// backward graph of the base. `parent` may be empty (level-only cache
/// entries); when present it is patched consistently (parent[w] is a
/// merged-view neighbor of w with level[parent[w]] + 1 == level[w]).
/// Declines (repaired = false, arrays untouched) when the delta carries
/// deletions or the inputs are not a plausible complete traversal.
RepairOutcome repair_bfs_levels(const BackwardGraph& backward,
                                const DeltaBuffer& delta, Vertex root,
                                std::vector<std::int32_t>& level,
                                std::vector<Vertex>& parent);

}  // namespace sembfs
