#include "bfs/policy.hpp"

namespace sembfs {

namespace {

Direction decide_frontier_ratio(const SwitchPolicy& p, const PolicyInput& in) {
  const double n_all = static_cast<double>(in.n_all);
  const double cur = static_cast<double>(in.cur_frontier);
  const bool growing = in.cur_frontier > in.prev_frontier;
  const bool shrinking = in.cur_frontier < in.prev_frontier;

  if (in.current == Direction::TopDown) {
    if (growing && cur > n_all / p.alpha) return Direction::BottomUp;
    return Direction::TopDown;
  }
  if (shrinking && cur < n_all / p.beta) return Direction::TopDown;
  return Direction::BottomUp;
}

Direction decide_edge_ratio(const SwitchPolicy& p, const PolicyInput& in) {
  if (in.current == Direction::TopDown) {
    if (static_cast<double>(in.frontier_edges) >
        static_cast<double>(in.unvisited_edges) / p.alpha)
      return Direction::BottomUp;
    return Direction::TopDown;
  }
  // Same Section III-C precondition as the frontier-ratio rule: only leave
  // bottom-up once the frontier is SHRINKING. Without it, a still-growing
  // frontier that merely starts below n/beta (common right after an early
  // TD->BU switch on a skewed graph) bounces straight back to top-down at
  // peak frontier width.
  const bool shrinking = in.cur_frontier < in.prev_frontier;
  if (shrinking && static_cast<double>(in.cur_frontier) <
                       static_cast<double>(in.n_all) / p.beta)
    return Direction::TopDown;
  return Direction::BottomUp;
}

}  // namespace

Direction SwitchPolicy::decide(const PolicyInput& in) const noexcept {
  switch (kind) {
    case PolicyKind::FrontierRatio:
      return decide_frontier_ratio(*this, in);
    case PolicyKind::EdgeRatio:
      return decide_edge_ratio(*this, in);
  }
  return in.current;
}

}  // namespace sembfs
