// Serial queue-based BFS equivalent to the Graph500 v2.1.4 reference code —
// the baseline the paper's Figure 8 labels "Graph500 reference" (0.04 GTEPS
// on their machine vs 5.12 for NETAL).
//
// Also the test oracle: any correct BFS must produce the same level
// assignment (trees may differ; levels may not).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace sembfs {

struct ReferenceBfsResult {
  Vertex root = kNoVertex;
  double seconds = 0.0;
  std::int64_t visited = 0;
  std::vector<Vertex> parent;
  std::vector<std::int32_t> level;
  std::int64_t teps_edge_count = 0;
  double teps = 0.0;
};

/// csr must cover all sources (a whole-graph CSR).
ReferenceBfsResult reference_bfs(const Csr& csr, Vertex root);

}  // namespace sembfs
