// In-process message fabric for the sharded semi-external BFS.
//
// R shards exchange serialized byte payloads (frontier_codec messages)
// through per-(sender, receiver, phase) mailboxes. Communication is
// phase-based, matching level-synchronous BFS: shards send during a
// phase, hit the shared barrier, then drain their inboxes. The three
// phases of one BFS level get separate mailboxes so the accounting can
// attribute every byte to frontier publish, bottom-up membership, or
// claim traffic — the split that makes the direction switch's
// communication-volume collapse visible per level.
//
// ## Ordering contract
//
// drain_all(to, phase) returns messages in FIXED ASCENDING SENDER-RANK
// order (0, 1, ..., R-1), and messages from one sender in their send
// order. The seed-era bus documented "arbitrary sender order", which made
// claim resolution depend on drain timing; with this contract the first
// claim a receiver observes for a child is a pure function of the inputs,
// so sharded runs are seed-deterministic and replayable like the rest of
// the stack. Callers must still send everything for a phase before any
// receiver drains it (the barrier enforces this); a send racing a drain
// of the same mailbox would make the contents, not the order,
// nondeterministic.
//
// ## Accounting
//
// Every payload byte and message is counted per (sender, receiver) pair
// and per phase. Totals exclude self-sends (rank k -> rank k is delivered
// like any message but is not "remote"), matching what a real
// interconnect would carry. Counters are mirrored into obs
// (shard.bus.<phase>_bytes / shard.bus.messages) when metrics are
// enabled.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "parallel/spin_barrier.hpp"
#include "util/contracts.hpp"

namespace sembfs::shard {

/// The three exchange phases of one sharded BFS level.
enum class Phase : std::size_t {
  kFrontier = 0,    ///< owner frontier publish along the grid row
  kMembership = 1,  ///< bottom-up frontier membership along the column
  kClaims = 2,      ///< (child, parent) proposals to the owner
};

inline constexpr std::size_t kPhaseCount = 3;

[[nodiscard]] constexpr const char* phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::kFrontier: return "frontier";
    case Phase::kMembership: return "membership";
    case Phase::kClaims: return "claims";
  }
  return "unknown";
}

class MessageBus {
 public:
  explicit MessageBus(std::size_t ranks);

  [[nodiscard]] std::size_t rank_count() const noexcept { return ranks_; }

  /// One drained message: the sender's rank and its serialized payload.
  struct Message {
    std::size_t from = 0;
    std::vector<std::byte> payload;
  };

  /// Queues `payload` from `from` to `to` under `phase` (buffered until
  /// the receiver drains). Empty payloads are dropped — every codec
  /// treats "no message" as the empty set. Thread-safe per mailbox.
  void send(std::size_t from, std::size_t to, Phase phase,
            std::vector<std::byte> payload);

  /// Moves out everything queued for `to` under `phase`, in fixed
  /// ascending sender-rank order (see the ordering contract above).
  /// Caller is the receiver.
  std::vector<Message> drain_all(std::size_t to, Phase phase);

  /// Level barrier shared by all ranks.
  void barrier() { barrier_.arrive_and_wait(); }

  /// Payload bytes ever sent from `from` to `to`, all phases.
  [[nodiscard]] std::uint64_t bytes_sent(std::size_t from,
                                         std::size_t to) const;
  /// Total payload bytes across rank pairs, excluding self-sends.
  [[nodiscard]] std::uint64_t total_remote_bytes() const noexcept;
  /// Per-phase remote byte total (self-sends excluded).
  [[nodiscard]] std::uint64_t remote_bytes(Phase phase) const noexcept;
  /// Messages sent, excluding self-sends and dropped empties.
  [[nodiscard]] std::uint64_t total_messages() const noexcept;

  void reset_counters() noexcept;

 private:
  struct Mailbox {
    mutable std::mutex mutex;
    std::vector<std::vector<std::byte>> queue;
    std::uint64_t bytes = 0;
    std::uint64_t messages = 0;
  };

  [[nodiscard]] Mailbox& box(std::size_t from, std::size_t to,
                             Phase phase) noexcept {
    SEMBFS_ASSERT(from < ranks_ && to < ranks_);
    return mailboxes_[(static_cast<std::size_t>(phase) * ranks_ + from) *
                          ranks_ +
                      to];
  }
  [[nodiscard]] const Mailbox& box(std::size_t from, std::size_t to,
                                   Phase phase) const noexcept {
    SEMBFS_ASSERT(from < ranks_ && to < ranks_);
    return mailboxes_[(static_cast<std::size_t>(phase) * ranks_ + from) *
                          ranks_ +
                      to];
  }

  std::size_t ranks_;
  std::vector<Mailbox> mailboxes_;  // phase x from x to
  // Remote-only totals, updated under the sender's mailbox mutex but read
  // lock-free by rank 0's per-level stats snapshot (reads happen at
  // barriers, after all sends of the phase).
  std::array<std::atomic<std::uint64_t>, kPhaseCount> phase_bytes_{};
  std::atomic<std::uint64_t> remote_messages_{0};
  SpinBarrier barrier_;
};

}  // namespace sembfs::shard
