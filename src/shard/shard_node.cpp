#include "shard/shard_node.hpp"

namespace sembfs::shard {

ShardNode::ShardNode(const Csr& block, const DeviceProfile& profile,
                     const std::string& dir, std::size_t shard_id,
                     const ShardNodeConfig& config)
    : shard_id_(shard_id), config_(config) {
  SEMBFS_EXPECTS(config.devices_per_shard >= 1);
  SEMBFS_EXPECTS(!config.verify_checksums || config.cache_bytes > 0);

  devices_.reserve(config.devices_per_shard);
  for (std::size_t d = 0; d < config.devices_per_shard; ++d)
    devices_.push_back(std::make_shared<NvmDevice>(profile));

  checksums_ = std::make_unique<ChunkChecksums>(config.chunk_bytes);
  if (devices_.size() == 1) {
    external_ = std::make_unique<ExternalCsrPartition>(
        block, devices_.front(), dir, shard_id, config.chunk_bytes,
        checksums_.get(), config.format);
  } else {
    external_ = std::make_unique<ExternalCsrPartition>(
        block, devices_, dir, shard_id, config.chunk_bytes,
        checksums_.get(), config.format);
  }

  if (config.cache_bytes > 0) {
    cache_ = std::make_unique<ChunkCache>(config.cache_bytes,
                                          config.chunk_bytes);
    if (config.verify_checksums)
      cache_->set_checksums(checksums_.get(),
                            config.retry.max_attempts);
    external_->attach_cache(cache_.get());
  }
  external_->set_compressed_max_refetches(config.retry.max_attempts);

  if (config.io_queue_depth > 0) {
    IoSchedulerConfig scheduler_config;
    scheduler_config.retry = config.retry;
    scheduler_ = std::make_unique<IoScheduler>(config.io_queue_depth,
                                               scheduler_config);
  }

  const VertexRange sources = block.source_range();
  degree_.resize(static_cast<std::size_t>(sources.size()), 0);
  for (Vertex v = sources.begin; v < sources.end; ++v)
    degree_[static_cast<std::size_t>(v - sources.begin)] =
        static_cast<std::int32_t>(block.degree(v));

  if (config.dram_fallback) dram_fallback_ = block;
}

void ShardNode::set_fault_plan(const FaultPlan& plan) {
  for (auto& device : devices_) device->set_fault_plan(plan);
}

void ShardNode::clear_fault_plan() {
  for (auto& device : devices_) device->clear_fault_plan();
}

std::uint64_t ShardNode::device_requests() const noexcept {
  std::uint64_t total = 0;
  for (const auto& device : devices_)
    total += device->stats().request_count();
  return total;
}

ShardNode::FetchOutcome ShardNode::fetch_neighbors_batch(
    std::span<const Vertex> batch, std::vector<std::vector<Vertex>>& out) {
  FetchOutcome outcome;
  out.clear();
  if (batch.empty()) return outcome;

  const int attempts =
      config_.retry.max_attempts > 0 ? config_.retry.max_attempts : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    try {
      if (scheduler_ != nullptr) {
        PendingNeighborsBatch pending =
            external_->start_fetch_neighbors_batch(batch, *scheduler_);
        outcome.requests += pending.wait(out);
      } else {
        outcome.requests += external_->fetch_neighbors_batch(batch, out);
      }
      return outcome;
    } catch (const NvmIoError&) {
      // Injected (or checksum-detected) read failure: every retry draws
      // fresh fault-sequence indices, so transient errors clear here.
      ++outcome.failures;
    }
  }

  if (!dram_fallback_.has_value())
    throw NvmIoError("shard " + std::to_string(shard_id_) +
                     ": batch fetch failed after retries "
                     "(DRAM fallback disabled)");

  // Degraded level: serve the batch from the DRAM copy. Correctness is
  // preserved; only this shard's stats show the failure.
  outcome.fell_back = true;
  out.resize(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto neighbors = dram_fallback_->neighbors(batch[i]);
    out[i].assign(neighbors.begin(), neighbors.end());
  }
  return outcome;
}

}  // namespace sembfs::shard
