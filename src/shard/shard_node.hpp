// One emulated node of the sharded BFS: its edge block and its private
// storage stack.
//
// Each shard owns the full I/O stack PRs 1-6 built for the single-node
// path, instantiated privately so nothing is shared across emulated
// nodes:
//   - one or more NvmDevices with the scenario's profile (several devices
//     are striped through StripedNvmFile via ExternalCsrPartition's
//     striped constructor),
//   - an ExternalCsrPartition of the 2D edge block (raw or varint chunk
//     format) with its own ChunkChecksums registry,
//   - optionally a private ChunkCache (with CRC verification against the
//     shard's checksums) and a private IoScheduler for aggregated
//     asynchronous fetches,
//   - a per-shard FaultPlan armed on every device of this shard and
//     nothing else — fault injection is the per-node failure domain.
//
// Fault containment: a fetch that still fails after
// RetryPolicy.max_attempts whole-batch retries (each retry consumes fresh
// fault-sequence indices, so transient injected errors clear) falls back
// to the shard's DRAM copy of the block. The shard reports the failure
// and the degraded level through FetchOutcome; the BFS result stays
// reference-exact and no other shard observes anything — degraded, not
// poisoned.
//
// DRAM-resident vertex state (all within the semi-external model, which
// keeps O(n) vertex state in memory and only the O(m) adjacency on NVM):
//   - has_local_edges(): one bit per source vertex of the block, so the
//     sweep and the expansion skip sources with no edges in this block
//     without a device round-trip (2D blocks are sparse — most vertices
//     have no edges in any given block),
//   - the DRAM fallback copy of the block (optional, on by default; turn
//     it off to make fetch failures fatal instead of degrading).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/external_csr.hpp"
#include "nvm/chunk_cache.hpp"
#include "nvm/chunk_checksums.hpp"
#include "nvm/chunk_format.hpp"
#include "nvm/device_profile.hpp"
#include "nvm/fault_plan.hpp"
#include "nvm/io_scheduler.hpp"
#include "nvm/nvm_device.hpp"
#include "util/bitmap.hpp"

namespace sembfs::shard {

struct ShardNodeConfig {
  std::uint32_t chunk_bytes = 4096;
  ChunkFormat format = ChunkFormat::kRaw;
  /// Physical devices per shard; > 1 stripes the block files round-robin.
  std::size_t devices_per_shard = 1;
  /// Private chunk-cache capacity; 0 disables the cache.
  std::size_t cache_bytes = 0;
  /// Verify cached chunks against the shard's CRC registry (needs cache).
  bool verify_checksums = false;
  /// Background I/O workers for aggregated fetches; 0 = synchronous.
  std::size_t io_queue_depth = 0;
  /// Whole-batch retry allowance before the DRAM fallback kicks in.
  RetryPolicy retry;
  /// Keep the DRAM copy of the block for fault degradation. Without it a
  /// fetch failure that survives the retries propagates as NvmIoError.
  bool dram_fallback = true;
};

class ShardNode {
 public:
  /// Offloads `block` (one 2D edge block) to this shard's private devices
  /// under `dir`. The block's source/destination ranges are preserved.
  ShardNode(const Csr& block, const DeviceProfile& profile,
            const std::string& dir, std::size_t shard_id,
            const ShardNodeConfig& config);

  [[nodiscard]] std::size_t shard_id() const noexcept { return shard_id_; }
  [[nodiscard]] VertexRange source_range() const noexcept {
    return external_->source_range();
  }
  [[nodiscard]] std::int64_t entry_count() const noexcept {
    return external_->entry_count();
  }
  /// Device bytes of this shard's block (encoded size under kVarint).
  [[nodiscard]] std::uint64_t nvm_byte_size() const noexcept {
    return external_->nvm_byte_size();
  }
  [[nodiscard]] std::uint64_t raw_byte_size() const noexcept {
    return external_->raw_byte_size();
  }

  /// Degree of source v within this block (DRAM, no device traffic).
  [[nodiscard]] std::int64_t local_degree(Vertex v) const noexcept {
    return degree_[local_index(v)];
  }
  /// True iff source v has at least one edge in this block.
  [[nodiscard]] bool has_local_edges(Vertex v) const noexcept {
    return degree_[local_index(v)] > 0;
  }

  /// Arms `plan` on every device of this shard (and resets their fault
  /// sequences). The caller derives per-shard seeds so shard failure
  /// domains draw independent fault sequences.
  void set_fault_plan(const FaultPlan& plan);
  void clear_fault_plan();

  /// Total requests ever issued across this shard's devices (offload
  /// writes included).
  [[nodiscard]] std::uint64_t device_requests() const noexcept;

  struct FetchOutcome {
    std::uint64_t requests = 0;  ///< device requests issued (all attempts)
    std::uint64_t failures = 0;  ///< attempts that ended in NvmIoError
    bool fell_back = false;      ///< served from the DRAM copy
  };

  /// Fetches the block adjacency of every vertex in `batch` into
  /// out[i] (resized). Retries the whole batch on injected I/O errors,
  /// then falls back to DRAM (see the containment notes above). Throws
  /// NvmIoError only when the fallback is disabled and retries are
  /// exhausted.
  FetchOutcome fetch_neighbors_batch(std::span<const Vertex> batch,
                                     std::vector<std::vector<Vertex>>& out);

 private:
  [[nodiscard]] std::size_t local_index(Vertex v) const noexcept {
    const VertexRange sources = external_->source_range();
    SEMBFS_ASSERT(sources.contains(v));
    return static_cast<std::size_t>(v - sources.begin);
  }

  std::size_t shard_id_;
  ShardNodeConfig config_;
  std::vector<std::shared_ptr<NvmDevice>> devices_;
  std::unique_ptr<ChunkChecksums> checksums_;
  std::unique_ptr<ExternalCsrPartition> external_;
  std::unique_ptr<ChunkCache> cache_;
  std::unique_ptr<IoScheduler> scheduler_;
  std::vector<std::int32_t> degree_;  ///< per-source block degrees (DRAM)
  std::optional<Csr> dram_fallback_;
};

}  // namespace sembfs::shard
