// Emulated multi-node direction-optimizing BFS over 2D-partitioned,
// semi-external edge blocks (ROADMAP item 3; Buluç & Madduri's 2D
// decomposition crossed with Beamer's hybrid direction switch, both in
// PAPERS.md, over the PR 1-6 per-shard NVM stack).
//
// R shards (ShardGrid) each hold one edge block offloaded to their own
// private devices (ShardNode) and exchange compressed frontier messages
// (frontier_codec) over the shard::MessageBus. One BFS level runs in
// three barriered phases on `ranks` pool workers, one worker per shard:
//
//   A. frontier publish — every owner encodes its current frontier once
//      and multicasts it to the shards of its publish row. Receivers OR
//      it into their visited replica (the word-skip sweep's "done"
//      bitmap) and, on top-down levels, keep it as the expansion input.
//   B. membership (bottom-up levels only) — every owner multicasts its
//      frontier down its grid column; receivers build the
//      destination-block membership bitmap the sweep probes.
//   C. claims —
//      top-down:   shards expand the published row frontier through
//                  their block (batched NVM fetches) and send one
//                  (child, parent) claim per cut edge to the child's
//                  owner — the communication volume is O(frontier
//                  edges), which is what the direction switch collapses;
//      bottom-up:  shards word-skip-sweep the unvisited sources of their
//                  row block, probe fetched adjacency against the
//                  membership bitmap with first-hit exit, and propose at
//                  most one claim per source — O(new vertices) traffic.
//      Owners drain claims in the bus's fixed sender order, first claim
//      per child wins, and write parent/level (single-writer: only the
//      owner ever touches its block's BFS state).
//
// Rank 0 aggregates frontier counts between barriers, snapshots the
// per-phase byte deltas into ShardLevelStats, and runs the SwitchPolicy
// on the same PolicyInput the single-node hybrid uses. Every step above
// is deterministic for a given (graph, root, config, fault seeds):
// message order, claim resolution and the per-level stats replay
// bit-for-bit.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bfs/level_stats.hpp"
#include "bfs/policy.hpp"
#include "graph/edge_list.hpp"
#include "nvm/device_profile.hpp"
#include "nvm/fault_plan.hpp"
#include "parallel/thread_pool.hpp"
#include "shard/frontier_codec.hpp"
#include "shard/message_bus.hpp"
#include "shard/shard_grid.hpp"
#include "shard/shard_node.hpp"

namespace sembfs::shard {

struct ShardedBfsConfig {
  SwitchPolicy policy;
  /// Forced direction for baselines; Hybrid uses the policy.
  enum class Mode { Hybrid, TopDownOnly, BottomUpOnly };
  Mode mode = Mode::Hybrid;
  /// Per-message frontier/membership encoding policy.
  EncodingChoice frontier_encoding = EncodingChoice::kAuto;
  /// Vertices per aggregated NVM fetch.
  std::size_t fetch_batch = 256;
};

struct ShardLevelStats {
  int level = 0;
  Direction direction = Direction::TopDown;
  std::int64_t frontier_vertices = 0;
  std::int64_t claimed_vertices = 0;
  /// Remote payload bytes this level, split by exchange phase
  /// (remote_bytes = frontier + membership + claim bytes).
  std::uint64_t remote_bytes = 0;
  std::uint64_t frontier_bytes = 0;
  std::uint64_t membership_bytes = 0;
  std::uint64_t claim_bytes = 0;
  std::uint64_t remote_messages = 0;
  /// Wall seconds summed across shards, split into exchange
  /// (encode/send/drain/decode) and compute (expansion/sweep/claim
  /// resolution, including simulated device time).
  double exchange_seconds = 0.0;
  double compute_seconds = 0.0;
  std::uint64_t nvm_requests = 0;
  std::uint64_t io_failures = 0;     ///< contained fetch failures
  std::uint64_t degraded_shards = 0; ///< shards that fell back to DRAM
};

struct ShardedBfsResult {
  Vertex root = kNoVertex;
  double seconds = 0.0;
  std::int32_t depth = 0;
  std::int64_t visited = 0;
  std::uint64_t total_remote_bytes = 0;
  std::uint64_t total_remote_messages = 0;
  std::vector<ShardLevelStats> levels;
  std::vector<Vertex> parent;
  std::vector<std::int32_t> level;
  std::int64_t teps_edge_count = 0;
  double teps = 0.0;
  std::uint64_t io_failures = 0;
  /// Any shard served any level from its DRAM fallback.
  bool degraded = false;
};

class ShardedBfs {
 public:
  /// Partitions `edges` into shards x (2D) edge blocks and offloads each
  /// to its shard's private devices under `workdir`/shard<k>. The pool
  /// must have at least `shards` workers. `grid_rows` forces the grid
  /// height (0 = as square as the count allows, see ShardGrid).
  ShardedBfs(const EdgeList& edges, std::size_t shards, ThreadPool& pool,
             const DeviceProfile& profile, const std::string& workdir,
             const ShardNodeConfig& node_config = {},
             std::size_t grid_rows = 0);

  [[nodiscard]] const ShardGrid& grid() const noexcept { return grid_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return grid_.shard_count();
  }
  [[nodiscard]] Vertex vertex_count() const noexcept {
    return grid_.vertex_count();
  }
  [[nodiscard]] ShardNode& node(std::size_t shard) noexcept {
    return *nodes_[shard];
  }
  /// Device bytes across all shards (the "does it fit one node" total).
  [[nodiscard]] std::uint64_t nvm_byte_size() const noexcept;
  /// Largest single shard's device bytes (per-node footprint).
  [[nodiscard]] std::uint64_t max_shard_nvm_byte_size() const noexcept;

  /// Arms per-shard fault plans derived from `base`: shard k draws from
  /// seed base.seed + k, so failure domains are independent and each
  /// shard's fault sequence is reproducible in isolation. A disabled
  /// plan clears all shards.
  void arm_fault_plans(const FaultPlan& base);
  /// Arms a plan on one shard only (targeted failure-domain tests).
  void set_fault_plan(std::size_t shard, const FaultPlan& plan);

  ShardedBfsResult run(Vertex root, const ShardedBfsConfig& config);

 private:
  ShardGrid grid_;
  ThreadPool& pool_;
  std::vector<std::unique_ptr<ShardNode>> nodes_;
};

}  // namespace sembfs::shard
