#include "shard/frontier_codec.hpp"

#include <stdexcept>

#include "util/contracts.hpp"

namespace sembfs::shard {

namespace codec_detail {

void check(bool ok, const char* what) {
  if (!ok) throw NvmIoError(what);
}

Header decode_header(std::span<const std::byte> data) {
  check(!data.empty(), "frontier decode: empty header");
  const auto tag = static_cast<std::uint8_t>(data[0]);
  check(tag >= 1 && tag <= 3, "frontier decode: unknown encoding tag");
  Header h{};
  h.encoding = static_cast<FrontierEncoding>(tag);
  std::size_t pos = 1;
  h.count = decode_varint(data, pos);
  h.range_begin = static_cast<std::int64_t>(decode_varint(data, pos));
  h.range_len = static_cast<std::int64_t>(decode_varint(data, pos));
  check(h.range_len >= 0, "frontier decode: negative range");
  h.pos = pos;
  return h;
}

}  // namespace codec_detail

namespace {

void append_header(std::vector<std::byte>& out, FrontierEncoding encoding,
                   std::uint64_t count, VertexRange range) {
  out.push_back(static_cast<std::byte>(encoding));
  append_varint(out, count);
  append_varint(out, static_cast<std::uint64_t>(range.begin));
  append_varint(out, static_cast<std::uint64_t>(range.size()));
}

}  // namespace

const char* encoding_choice_name(EncodingChoice c) noexcept {
  switch (c) {
    case EncodingChoice::kAuto: return "auto";
    case EncodingChoice::kForceBitmap: return "bitmap";
    case EncodingChoice::kForceVarint: return "varint";
  }
  return "auto";
}

EncodingChoice encoding_choice_from_name(const std::string& name) {
  if (name == "auto") return EncodingChoice::kAuto;
  if (name == "bitmap") return EncodingChoice::kForceBitmap;
  if (name == "varint") return EncodingChoice::kForceVarint;
  throw std::invalid_argument("unknown frontier encoding: " + name +
                              " (expected auto|bitmap|varint)");
}

std::vector<std::byte> encode_vertex_set(std::span<const Vertex> vertices,
                                         VertexRange range,
                                         EncodingChoice choice) {
  std::vector<std::byte> out;
  if (vertices.empty()) return out;

  const auto bitmap_payload =
      static_cast<std::size_t>((range.size() + 7) / 8);

  if (choice != EncodingChoice::kForceBitmap) {
    append_header(out, FrontierEncoding::kVarintList, vertices.size(),
                  range);
    const std::size_t header_bytes = out.size();
    Vertex prev = range.begin;
    bool first = true;
    for (const Vertex v : vertices) {
      SEMBFS_ASSERT(range.contains(v) && (first || v > prev));
      append_varint(out, static_cast<std::uint64_t>(v - prev));
      prev = v;
      first = false;
    }
    if (choice == EncodingChoice::kForceVarint ||
        out.size() - header_bytes < bitmap_payload)
      return out;
    out.clear();  // the bitmap is no larger — re-encode dense
  }

  append_header(out, FrontierEncoding::kBitmap, vertices.size(), range);
  const std::size_t payload_start = out.size();
  out.resize(payload_start + bitmap_payload, std::byte{0});
  for (const Vertex v : vertices) {
    SEMBFS_ASSERT(range.contains(v));
    const auto off = static_cast<std::size_t>(v - range.begin);
    out[payload_start + (off >> 3)] |=
        static_cast<std::byte>(1U << (off & 7));
  }
  return out;
}

std::vector<std::byte> encode_claims(std::span<const Claim> claims,
                                     VertexRange range) {
  std::vector<std::byte> out;
  if (claims.empty()) return out;
  append_header(out, FrontierEncoding::kPairList, claims.size(), range);
  Vertex prev = range.begin;
  for (const Claim& c : claims) {
    SEMBFS_ASSERT(range.contains(c.child) && c.child >= prev);
    append_varint(out, static_cast<std::uint64_t>(c.child - prev));
    append_varint(out, zigzag_encode(c.parent - c.child));
    prev = c.child;
  }
  return out;
}

FrontierEncoding encoding_of(std::span<const std::byte> data) {
  if (data.empty()) return FrontierEncoding::kVarintList;
  return codec_detail::decode_header(data).encoding;
}

}  // namespace sembfs::shard
