#include "shard/shard_grid.hpp"

namespace sembfs::shard {

namespace {

/// Largest divisor of `shards` whose square does not exceed `shards`.
std::size_t default_rows(std::size_t shards) {
  std::size_t best = 1;
  for (std::size_t r = 1; r * r <= shards; ++r)
    if (shards % r == 0) best = r;
  return best;
}

}  // namespace

ShardGrid::ShardGrid(Vertex vertex_count, std::size_t shards,
                     std::size_t grid_rows)
    : n_(vertex_count) {
  SEMBFS_EXPECTS(vertex_count > 0);
  SEMBFS_EXPECTS(shards >= 1);
  rows_ = grid_rows == 0 ? default_rows(shards) : grid_rows;
  SEMBFS_EXPECTS(rows_ >= 1 && shards % rows_ == 0);
  cols_ = shards / rows_;
  row_partition_ = VertexPartition(n_, rows_);
  col_partition_ = VertexPartition(n_, cols_);
  owner_partition_ = VertexPartition(n_, shards);
}

std::vector<std::size_t> ShardGrid::row_members(std::size_t row) const {
  SEMBFS_ASSERT(row < rows_);
  std::vector<std::size_t> out;
  out.reserve(cols_);
  for (std::size_t c = 0; c < cols_; ++c) out.push_back(shard_at(row, c));
  return out;
}

std::vector<std::size_t> ShardGrid::col_members(std::size_t col) const {
  SEMBFS_ASSERT(col < cols_);
  std::vector<std::size_t> out;
  out.reserve(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out.push_back(shard_at(r, col));
  return out;
}

}  // namespace sembfs::shard
