// Wire format for the sharded BFS frontier exchange.
//
// Every message the shard::MessageBus carries is a fully serialized byte
// string in one of three encodings, chosen per message:
//
//   header (all encodings):
//     byte 0           encoding tag (kVarintList = 1, kBitmap = 2,
//                      kPairList = 3)
//     varint           element count (vertices, or pairs for kPairList)
//     varint           range_begin  — first vertex the message may name
//     varint           range_len    — message covers [range_begin,
//                      range_begin + range_len)
//   payload:
//     kVarintList      `count` varints: v[0] - range_begin, then strictly
//                      positive gaps v[i] - v[i-1]. The sparse-frontier
//                      encoding — a few bytes per member.
//     kBitmap          ceil(range_len / 8) bytes; bit b of byte k set iff
//                      vertex range_begin + 8k + b is a member. The
//                      dense-frontier encoding — size independent of the
//                      member count, which is what makes the bottom-up
//                      allgather cheap at the peak levels.
//     kPairList        `count` (child, parent) claims, children
//                      non-decreasing: varint child gap (first child
//                      relative to range_begin), then
//                      varint zigzag(parent - child). Parents of graph
//                      neighbors are numerically close to their children
//                      often enough that the zigzag delta beats 8 bytes.
//
// EncodingChoice::kAuto picks per message by encoded size: the vertex set
// is varint-encoded first and replaced by the bitmap when that payload
// would not be larger (deterministic — depends only on the message
// contents, never on timing). Claims are always kPairList; the bitmap
// cannot carry parents.
//
// Decoding is bounds-checked end to end (reusing the nvm varint decoder's
// NvmIoError discipline): truncated payloads, out-of-range members, or
// unsorted lists throw rather than ingest garbage — a faulted shard must
// not be able to poison its peers' BFS state with a malformed message.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "graph/types.hpp"
#include "numa/partition.hpp"
#include "nvm/varint.hpp"

namespace sembfs::shard {

enum class FrontierEncoding : std::uint8_t {
  kVarintList = 1,
  kBitmap = 2,
  kPairList = 3,
};

/// Per-message encoding policy for vertex-set messages.
enum class EncodingChoice {
  kAuto,          ///< smaller of varint list / bitmap, per message
  kForceBitmap,   ///< always kBitmap
  kForceVarint,   ///< always kVarintList
};

[[nodiscard]] const char* encoding_choice_name(EncodingChoice c) noexcept;
/// "auto" | "bitmap" | "varint"; throws std::invalid_argument otherwise.
[[nodiscard]] EncodingChoice encoding_choice_from_name(
    const std::string& name);

/// One (child, parent) claim proposal.
struct Claim {
  Vertex child = kNoVertex;
  Vertex parent = kNoVertex;

  friend bool operator==(const Claim&, const Claim&) = default;
};

/// Encodes `vertices` (strictly ascending, all inside `range`) per
/// `choice`. An empty set encodes to an empty byte string (the bus drops
/// empty sends; decoders accept the empty string as the empty set).
[[nodiscard]] std::vector<std::byte> encode_vertex_set(
    std::span<const Vertex> vertices, VertexRange range,
    EncodingChoice choice);

/// Encodes claims (children non-decreasing, all inside `range`; parents
/// unconstrained). Always kPairList.
[[nodiscard]] std::vector<std::byte> encode_claims(
    std::span<const Claim> claims, VertexRange range);

/// Encoding tag of a serialized message (for per-encoding accounting).
/// Empty messages report kVarintList.
[[nodiscard]] FrontierEncoding encoding_of(std::span<const std::byte> data);

/// Decodes a vertex-set message (kVarintList or kBitmap), calling
/// fn(Vertex) for every member in ascending order. Throws NvmIoError on a
/// malformed message.
template <typename Fn>
void decode_vertex_set(std::span<const std::byte> data, Fn&& fn);

/// Decodes a kPairList message, calling fn(child, parent) in message
/// order (children non-decreasing). Throws NvmIoError on a malformed
/// message.
template <typename Fn>
void decode_claims(std::span<const std::byte> data, Fn&& fn);

// ---------------------------------------------------------------------------
// implementation

namespace codec_detail {

struct Header {
  FrontierEncoding encoding;
  std::uint64_t count;
  std::int64_t range_begin;
  std::int64_t range_len;
  std::size_t pos;  ///< payload start
};

[[nodiscard]] Header decode_header(std::span<const std::byte> data);

void check(bool ok, const char* what);

}  // namespace codec_detail

template <typename Fn>
void decode_vertex_set(std::span<const std::byte> data, Fn&& fn) {
  if (data.empty()) return;
  const codec_detail::Header h = codec_detail::decode_header(data);
  std::size_t pos = h.pos;
  const std::int64_t range_end = h.range_begin + h.range_len;
  if (h.encoding == FrontierEncoding::kVarintList) {
    std::int64_t prev = h.range_begin - 1;
    for (std::uint64_t i = 0; i < h.count; ++i) {
      const std::uint64_t gap = decode_varint(data, pos);
      codec_detail::check(i > 0 ? gap > 0 : true,
                          "frontier decode: unsorted varint list");
      const std::int64_t v =
          prev + static_cast<std::int64_t>(gap) + (i == 0 ? 1 : 0);
      codec_detail::check(v >= h.range_begin && v < range_end,
                          "frontier decode: vertex out of range");
      fn(static_cast<Vertex>(v));
      prev = v;
    }
    codec_detail::check(pos == data.size(),
                        "frontier decode: trailing bytes");
  } else {
    codec_detail::check(h.encoding == FrontierEncoding::kBitmap,
                        "frontier decode: vertex set expected");
    const std::size_t payload =
        static_cast<std::size_t>((h.range_len + 7) / 8);
    codec_detail::check(data.size() - pos == payload,
                        "frontier decode: bitmap payload size mismatch");
    std::uint64_t seen = 0;
    for (std::size_t k = 0; k < payload; ++k) {
      auto byte = static_cast<std::uint8_t>(data[pos + k]);
      while (byte != 0) {
        const int b = std::countr_zero(byte);
        const std::int64_t v =
            h.range_begin + static_cast<std::int64_t>(8 * k + b);
        codec_detail::check(v < range_end,
                            "frontier decode: bitmap tail bit set");
        fn(static_cast<Vertex>(v));
        ++seen;
        byte = static_cast<std::uint8_t>(byte & (byte - 1));
      }
    }
    codec_detail::check(seen == h.count,
                        "frontier decode: bitmap count mismatch");
  }
}

template <typename Fn>
void decode_claims(std::span<const std::byte> data, Fn&& fn) {
  if (data.empty()) return;
  const codec_detail::Header h = codec_detail::decode_header(data);
  codec_detail::check(h.encoding == FrontierEncoding::kPairList,
                      "claim decode: pair list expected");
  std::size_t pos = h.pos;
  const std::int64_t range_end = h.range_begin + h.range_len;
  std::int64_t child = h.range_begin;
  for (std::uint64_t i = 0; i < h.count; ++i) {
    child += static_cast<std::int64_t>(decode_varint(data, pos));
    codec_detail::check(child >= h.range_begin && child < range_end,
                        "claim decode: child out of range");
    const std::int64_t parent =
        child + zigzag_decode(decode_varint(data, pos));
    fn(static_cast<Vertex>(child), static_cast<Vertex>(parent));
  }
  codec_detail::check(pos == data.size(), "claim decode: trailing bytes");
}

}  // namespace sembfs::shard
