#include "shard/sharded_bfs.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>

#include "bfs/sweep.hpp"
#include "obs/metrics.hpp"
#include "util/bitmap.hpp"
#include "util/timer.hpp"

namespace sembfs::shard {

ShardedBfs::ShardedBfs(const EdgeList& edges, std::size_t shards,
                       ThreadPool& pool, const DeviceProfile& profile,
                       const std::string& workdir,
                       const ShardNodeConfig& node_config,
                       std::size_t grid_rows)
    : grid_(edges.vertex_count(), shards, grid_rows), pool_(pool) {
  SEMBFS_EXPECTS(pool.size() >= shards);
  nodes_.reserve(shards);
  // Blocks are built one at a time: build_csr_filtered runs on the pool,
  // and the pool-exclusivity contract forbids overlapping regions.
  for (std::size_t k = 0; k < shards; ++k) {
    const Csr block =
        build_csr_filtered(edges, grid_.source_range(k),
                           grid_.destination_range(k), CsrBuildOptions{},
                           pool_);
    nodes_.push_back(std::make_unique<ShardNode>(
        block, profile, workdir + "/shard" + std::to_string(k), k,
        node_config));
  }
}

std::uint64_t ShardedBfs::nvm_byte_size() const noexcept {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) total += node->nvm_byte_size();
  return total;
}

std::uint64_t ShardedBfs::max_shard_nvm_byte_size() const noexcept {
  std::uint64_t max = 0;
  for (const auto& node : nodes_)
    max = std::max(max, node->nvm_byte_size());
  return max;
}

void ShardedBfs::arm_fault_plans(const FaultPlan& base) {
  for (std::size_t k = 0; k < nodes_.size(); ++k) {
    if (!base.enabled()) {
      nodes_[k]->clear_fault_plan();
      continue;
    }
    FaultPlan plan = base;
    plan.seed = base.seed + k;  // independent per-shard fault sequences
    nodes_[k]->set_fault_plan(plan);
  }
}

void ShardedBfs::set_fault_plan(std::size_t shard, const FaultPlan& plan) {
  SEMBFS_EXPECTS(shard < nodes_.size());
  nodes_[shard]->set_fault_plan(plan);
}

ShardedBfsResult ShardedBfs::run(Vertex root,
                                 const ShardedBfsConfig& config) {
  const Vertex n = grid_.vertex_count();
  SEMBFS_EXPECTS(root >= 0 && root < n);
  const std::size_t ranks = grid_.shard_count();
  const std::size_t fetch_batch =
      config.fetch_batch > 0 ? config.fetch_batch : 1;

  ShardedBfsResult result;
  result.root = root;
  result.parent.assign(static_cast<std::size_t>(n), kNoVertex);
  result.level.assign(static_cast<std::size_t>(n), -1);

  MessageBus bus{ranks};

  // Shared per-level coordination state (the "allreduce" side channel).
  struct Shared {
    std::atomic<std::int64_t> next_total{0};
    std::atomic<int> direction{0};  // 0 = top-down, 1 = bottom-up
    std::atomic<bool> done{false};
    std::atomic<std::int64_t> degree_sum{0};
    std::atomic<std::int64_t> visited{0};
    std::atomic<std::uint64_t> exchange_ns{0};
    std::atomic<std::uint64_t> compute_ns{0};
    std::atomic<std::uint64_t> nvm_requests{0};
    std::atomic<std::uint64_t> io_failures{0};
    std::atomic<std::uint64_t> degraded_shards{0};
    std::atomic<bool> failed{false};
  } shared;
  shared.direction.store(
      config.mode == ShardedBfsConfig::Mode::BottomUpOnly ? 1 : 0);

  // First unrecoverable shard error. A throwing rank must NOT unwind out
  // of the parallel region — its peers would spin forever at the next
  // barrier — so errors are parked here and rethrown on the main thread
  // once the level completes.
  std::exception_ptr error;
  std::mutex error_mutex;

  // Per-shard run state. Each shard only ever touches its own entry;
  // owners additionally write their exclusive parent/level block.
  std::vector<std::vector<Vertex>> frontier(ranks);  // owned, ascending
  std::vector<std::vector<Vertex>> next(ranks);
  std::vector<AtomicBitmap> replica;  // visited over the source range
  replica.reserve(ranks);
  for (std::size_t k = 0; k < ranks; ++k)
    replica.emplace_back(static_cast<std::size_t>(n));
  std::vector<Bitmap> membership(ranks);  // frontier over the dest range
  for (auto& m : membership) m.resize(static_cast<std::size_t>(n));

  {
    const std::size_t owner = grid_.owner_of(root);
    frontier[owner].push_back(root);
    result.parent[static_cast<std::size_t>(root)] = root;
    result.level[static_cast<std::size_t>(root)] = 0;
  }
  std::int64_t cur_frontier_total = 1;

  Timer timer;
  std::int32_t level = 1;
  while (cur_frontier_total > 0 && level <= n) {
    shared.next_total.store(0);
    shared.exchange_ns.store(0);
    shared.compute_ns.store(0);
    shared.nvm_requests.store(0);
    shared.io_failures.store(0);
    shared.degraded_shards.store(0);
    const Direction direction = shared.direction.load() == 0
                                    ? Direction::TopDown
                                    : Direction::BottomUp;
    // Per-level byte deltas: snapshot the phase totals before the level
    // (no sends are in flight between levels).
    const std::uint64_t frontier_bytes0 =
        bus.remote_bytes(Phase::kFrontier);
    const std::uint64_t membership_bytes0 =
        bus.remote_bytes(Phase::kMembership);
    const std::uint64_t claim_bytes0 = bus.remote_bytes(Phase::kClaims);
    const std::uint64_t messages0 = bus.total_messages();

    pool_.run(ranks, [&](std::size_t k) {
      ShardNode& node = *nodes_[k];
      const VertexRange owner_range = grid_.owner_block(k);
      const VertexRange source_range = grid_.source_range(k);
      auto& my_next = next[k];
      my_next.clear();
      double exchange_s = 0.0;
      double compute_s = 0.0;
      Timer phase_timer;

      // Phase A — frontier publish: one encode, multicast to the grid
      // row holding this owner's vertices as sources. Receivers fold the
      // messages into their visited replica; on top-down levels the same
      // messages are the expansion input.
      {
        const std::vector<std::byte> encoded = encode_vertex_set(
            frontier[k], owner_range, config.frontier_encoding);
        for (const std::size_t to :
             grid_.row_members(grid_.publish_row(k)))
          bus.send(k, to, Phase::kFrontier, encoded);
      }
      bus.barrier();  // all publishes delivered
      std::vector<Vertex> row_frontier;
      for (const auto& msg : bus.drain_all(k, Phase::kFrontier)) {
        decode_vertex_set(msg.payload, [&](Vertex v) {
          SEMBFS_ASSERT(source_range.contains(v));
          replica[k].set(static_cast<std::size_t>(v));
          if (direction == Direction::TopDown && node.has_local_edges(v))
            row_frontier.push_back(v);
        });
      }
      exchange_s += phase_timer.seconds();

      // Phase B — bottom-up membership: owners multicast their frontier
      // down their own grid column, giving every shard the frontier
      // restricted to its destination block.
      if (direction == Direction::BottomUp) {
        phase_timer.reset();
        const std::vector<std::byte> encoded = encode_vertex_set(
            frontier[k], owner_range, config.frontier_encoding);
        for (const std::size_t to : grid_.col_members(grid_.col_of(k)))
          bus.send(k, to, Phase::kMembership, encoded);
        bus.barrier();  // all membership messages delivered
        membership[k].clear();
        for (const auto& msg : bus.drain_all(k, Phase::kMembership)) {
          decode_vertex_set(msg.payload, [&](Vertex v) {
            membership[k].set(static_cast<std::size_t>(v));
          });
        }
        exchange_s += phase_timer.seconds();
      }

      // Phase C — claim generation against this shard's edge block.
      phase_timer.reset();
      std::vector<Claim> claims;  // children non-decreasing when sent
      std::vector<Vertex> batch;
      std::vector<std::vector<Vertex>> adjacency;
      std::uint64_t requests = 0;
      std::uint64_t failures = 0;
      bool fell_back = false;
      const auto fetch_batched = [&](std::span<const Vertex> vertices,
                                     const auto& per_vertex) {
        try {
          for (std::size_t base = 0; base < vertices.size();
               base += fetch_batch) {
            const std::size_t count =
                std::min(fetch_batch, vertices.size() - base);
            const auto slice = vertices.subspan(base, count);
            const ShardNode::FetchOutcome outcome =
                node.fetch_neighbors_batch(slice, adjacency);
            requests += outcome.requests;
            failures += outcome.failures;
            fell_back = fell_back || outcome.fell_back;
            for (std::size_t i = 0; i < count; ++i)
              per_vertex(slice[i], adjacency[i]);
          }
        } catch (...) {
          // Retries exhausted and no DRAM fallback: this shard stops
          // expanding but keeps walking the barrier protocol so its
          // peers finish the level; the error surfaces after the region.
          const std::lock_guard<std::mutex> lock{error_mutex};
          if (!error) error = std::current_exception();
          shared.failed.store(true);
        }
      };

      if (direction == Direction::TopDown) {
        // One claim per cut edge — the O(frontier edges) traffic the
        // direction switch exists to collapse.
        fetch_batched(row_frontier,
                      [&](Vertex u, const std::vector<Vertex>& adj) {
                        for (const Vertex w : adj)
                          claims.push_back(Claim{w, u});
                      });
        // Sorted by (child, parent): the run-flush below needs children
        // grouped by owner, and the first claim the owner sees for a
        // child is then the smallest parent from the lowest sender rank —
        // independent of generation order. Duplicate children stay on the
        // wire deliberately: the message volume IS one claim per cut
        // edge, the quantity the direction switch collapses.
        std::sort(claims.begin(), claims.end(),
                  [](const Claim& a, const Claim& b) {
                    return a.child != b.child ? a.child < b.child
                                              : a.parent < b.parent;
                  });
      } else {
        // Word-skip sweep of this block's unvisited sources, probing
        // fetched adjacency against the membership bitmap with first-hit
        // exit: at most one claim per source — O(new vertices) traffic.
        std::vector<Vertex> candidates;
        sweep_unvisited(replica[k], source_range.begin, source_range.end,
                        [&](Vertex w) {
                          if (node.has_local_edges(w))
                            candidates.push_back(w);
                        });
        const Bitmap& member = membership[k];
        fetch_batched(candidates,
                      [&](Vertex w, const std::vector<Vertex>& adj) {
                        for (const Vertex v : adj) {
                          if (member.test(static_cast<std::size_t>(v))) {
                            claims.push_back(Claim{w, v});
                            break;
                          }
                        }
                      });
      }

      // Claims are sorted by child and owner blocks are contiguous, so
      // per-owner messages are contiguous runs.
      {
        std::vector<Claim> outbox;
        std::size_t to = ranks;  // invalid
        VertexRange to_range{};
        const auto flush = [&] {
          if (outbox.empty()) return;
          bus.send(k, to, Phase::kClaims,
                   encode_claims(outbox, to_range));
          outbox.clear();
        };
        for (const Claim& claim : claims) {
          if (to == ranks || !to_range.contains(claim.child)) {
            flush();
            to = grid_.owner_of(claim.child);
            to_range = grid_.owner_block(to);
          }
          outbox.push_back(claim);
        }
        flush();
      }
      compute_s += phase_timer.seconds();
      bus.barrier();  // all claims delivered

      // Claim resolution — only the owner writes its block's BFS state,
      // draining in the bus's fixed sender order so the first claim per
      // child is deterministic.
      phase_timer.reset();
      for (const auto& msg : bus.drain_all(k, Phase::kClaims)) {
        decode_claims(msg.payload, [&](Vertex child, Vertex parent) {
          SEMBFS_ASSERT(owner_range.contains(child));
          auto& slot = result.parent[static_cast<std::size_t>(child)];
          if (slot == kNoVertex) {
            slot = parent;
            result.level[static_cast<std::size_t>(child)] = level;
            my_next.push_back(child);
          }
        });
      }
      // Per-sender runs are sorted but interleave across senders; the
      // next publish requires ascending order.
      std::sort(my_next.begin(), my_next.end());
      compute_s += phase_timer.seconds();

      shared.next_total.fetch_add(
          static_cast<std::int64_t>(my_next.size()));
      shared.exchange_ns.fetch_add(
          static_cast<std::uint64_t>(exchange_s * 1e9));
      shared.compute_ns.fetch_add(
          static_cast<std::uint64_t>(compute_s * 1e9));
      shared.nvm_requests.fetch_add(requests);
      shared.io_failures.fetch_add(failures);
      if (fell_back) shared.degraded_shards.fetch_add(1);
      bus.barrier();  // all claims resolved, counters visible

      if (k == 0) {
        const std::int64_t next_total = shared.next_total.load();
        ShardLevelStats stats;
        stats.level = level;
        stats.direction = direction;
        stats.frontier_vertices = cur_frontier_total;
        stats.claimed_vertices = next_total;
        stats.frontier_bytes =
            bus.remote_bytes(Phase::kFrontier) - frontier_bytes0;
        stats.membership_bytes =
            bus.remote_bytes(Phase::kMembership) - membership_bytes0;
        stats.claim_bytes = bus.remote_bytes(Phase::kClaims) - claim_bytes0;
        stats.remote_bytes = stats.frontier_bytes +
                             stats.membership_bytes + stats.claim_bytes;
        stats.remote_messages = bus.total_messages() - messages0;
        stats.exchange_seconds =
            static_cast<double>(shared.exchange_ns.load()) * 1e-9;
        stats.compute_seconds =
            static_cast<double>(shared.compute_ns.load()) * 1e-9;
        stats.nvm_requests = shared.nvm_requests.load();
        stats.io_failures = shared.io_failures.load();
        stats.degraded_shards = shared.degraded_shards.load();
        result.levels.push_back(stats);

        if (config.mode == ShardedBfsConfig::Mode::Hybrid) {
          PolicyInput in;
          in.current = direction;
          in.n_all = n;
          in.prev_frontier = cur_frontier_total;
          in.cur_frontier = next_total;
          shared.direction.store(
              config.policy.decide(in) == Direction::TopDown ? 0 : 1);
        }
        shared.done.store(next_total == 0);
      }
      bus.barrier();  // stats recorded, decision published
    });

    if (shared.failed.load()) std::rethrow_exception(error);
    cur_frontier_total = shared.next_total.load();
    for (std::size_t k = 0; k < ranks; ++k) frontier[k].swap(next[k]);
    ++level;
    if (shared.done.load()) break;
  }
  result.seconds = timer.seconds();
  result.depth = level - 1;
  result.total_remote_bytes = bus.total_remote_bytes();
  result.total_remote_messages = bus.total_messages();
  for (const ShardLevelStats& stats : result.levels) {
    result.io_failures += stats.io_failures;
    result.degraded = result.degraded || stats.degraded_shards > 0;
  }

  // Epilogue: visited count over owner blocks, TEPS numerator over the
  // edge blocks (each shard holds one row-block x col-block slice of
  // every source's adjacency, so summing local degrees across all shards
  // counts every directed entry exactly once).
  pool_.run(ranks, [&](std::size_t k) {
    const VertexRange source_range = grid_.source_range(k);
    std::int64_t degree_sum = 0;
    for (Vertex v = source_range.begin; v < source_range.end; ++v) {
      if (result.parent[static_cast<std::size_t>(v)] == kNoVertex) continue;
      degree_sum += nodes_[k]->local_degree(v);
    }
    shared.degree_sum.fetch_add(degree_sum);

    const VertexRange owner_range = grid_.owner_block(k);
    std::int64_t visited = 0;
    for (Vertex v = owner_range.begin; v < owner_range.end; ++v)
      if (result.parent[static_cast<std::size_t>(v)] != kNoVertex)
        ++visited;
    shared.visited.fetch_add(visited);
  });
  result.visited = shared.visited.load();
  result.teps_edge_count = shared.degree_sum.load() / 2;
  result.teps = result.seconds > 0.0
                    ? static_cast<double>(result.teps_edge_count) /
                          result.seconds
                    : 0.0;

  if (obs::enabled()) {
    obs::metrics().counter("shard.bfs.runs").add(1);
    obs::metrics()
        .counter("shard.bfs.levels")
        .add(result.levels.size());
    obs::metrics().counter("shard.bfs.io_failures").add(result.io_failures);
    obs::metrics()
        .counter("shard.bfs.remote_bytes")
        .add(result.total_remote_bytes);
  }
  return result;
}

}  // namespace sembfs::shard
