#include "shard/message_bus.hpp"

#include "obs/metrics.hpp"

namespace sembfs::shard {

MessageBus::MessageBus(std::size_t ranks)
    : ranks_(ranks),
      mailboxes_(kPhaseCount * ranks * ranks),
      barrier_(ranks) {
  SEMBFS_EXPECTS(ranks >= 1);
}

void MessageBus::send(std::size_t from, std::size_t to, Phase phase,
                      std::vector<std::byte> payload) {
  if (payload.empty()) return;
  const std::uint64_t bytes = payload.size();
  Mailbox& mailbox = box(from, to, phase);
  {
    const std::lock_guard<std::mutex> lock{mailbox.mutex};
    mailbox.queue.push_back(std::move(payload));
    mailbox.bytes += bytes;
    ++mailbox.messages;
  }
  if (from != to) {
    phase_bytes_[static_cast<std::size_t>(phase)].fetch_add(
        bytes, std::memory_order_relaxed);
    remote_messages_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) {
      static obs::Counter& frontier_bytes =
          obs::metrics().counter("shard.bus.frontier_bytes");
      static obs::Counter& membership_bytes =
          obs::metrics().counter("shard.bus.membership_bytes");
      static obs::Counter& claim_bytes =
          obs::metrics().counter("shard.bus.claim_bytes");
      static obs::Counter& messages =
          obs::metrics().counter("shard.bus.messages");
      switch (phase) {
        case Phase::kFrontier: frontier_bytes.add(bytes); break;
        case Phase::kMembership: membership_bytes.add(bytes); break;
        case Phase::kClaims: claim_bytes.add(bytes); break;
      }
      messages.add(1);
    }
  }
}

std::vector<MessageBus::Message> MessageBus::drain_all(std::size_t to,
                                                       Phase phase) {
  std::vector<Message> out;
  // The ordering contract: senders visited in ascending rank order, each
  // sender's messages in send order.
  for (std::size_t from = 0; from < ranks_; ++from) {
    Mailbox& mailbox = box(from, to, phase);
    std::vector<std::vector<std::byte>> drained;
    {
      const std::lock_guard<std::mutex> lock{mailbox.mutex};
      drained.swap(mailbox.queue);
    }
    for (auto& payload : drained)
      out.push_back(Message{from, std::move(payload)});
  }
  return out;
}

std::uint64_t MessageBus::bytes_sent(std::size_t from,
                                     std::size_t to) const {
  std::uint64_t total = 0;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const Mailbox& mailbox = box(from, to, static_cast<Phase>(p));
    const std::lock_guard<std::mutex> lock{mailbox.mutex};
    total += mailbox.bytes;
  }
  return total;
}

std::uint64_t MessageBus::total_remote_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& bytes : phase_bytes_)
    total += bytes.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t MessageBus::remote_bytes(Phase phase) const noexcept {
  return phase_bytes_[static_cast<std::size_t>(phase)].load(
      std::memory_order_relaxed);
}

std::uint64_t MessageBus::total_messages() const noexcept {
  return remote_messages_.load(std::memory_order_relaxed);
}

void MessageBus::reset_counters() noexcept {
  for (auto& mailbox : mailboxes_) {
    const std::lock_guard<std::mutex> lock{mailbox.mutex};
    mailbox.bytes = 0;
    mailbox.messages = 0;
  }
  for (auto& bytes : phase_bytes_)
    bytes.store(0, std::memory_order_relaxed);
  remote_messages_.store(0, std::memory_order_relaxed);
}

}  // namespace sembfs::shard
