// 2D edge-matrix partitioning for the emulated multi-node BFS (Buluç &
// Madduri, Distributed-Memory BFS on Massive Graphs — see PAPERS.md).
//
// R shards are arranged in a rows x cols grid (rows <= cols, rows * cols
// == R). Three aligned block partitions of the vertex space [0, n):
//
//   - row blocks   (rows blocks):  shard (i, j) stores the edge block with
//                                  SOURCES in row_block(i)
//   - col blocks   (cols blocks):  ... and DESTINATIONS in col_block(j)
//   - owner blocks (R blocks):     shard k exclusively owns the BFS state
//                                  (parent / level / frontier membership)
//                                  of owner_block(k)
//
// All three use the same k*n/parts block bounds (VertexPartition), so
// every owner block nests inside exactly one row block and one col block
// — the alignment every exchange pattern below relies on. Owner blocks
// are enumerated COLUMN-major (owner index q = j * rows + i for shard
// (i, j)), which makes the owners of col_block(j) exactly the shards of
// grid column j: top-down claim messages for children in a shard's
// destination block travel along its own grid column.
//
// Per-level exchange patterns (see sharded_bfs.cpp):
//   frontier publish — owner k multicasts its frontier to the cols shards
//                      of grid row publish_row(k) (the row whose sources
//                      contain k's owner block); feeds top-down expansion
//                      and the per-shard visited replicas.
//   membership       — owner k multicasts its frontier to the rows shards
//                      of its own grid column (bottom-up levels only).
//   claims           — (child, parent) proposals to owner_of(child).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/types.hpp"
#include "numa/partition.hpp"
#include "util/contracts.hpp"

namespace sembfs::shard {

class ShardGrid {
 public:
  /// Partitions [0, n) over `shards` shards. `grid_rows` forces the grid
  /// height (must divide `shards`); 0 picks the largest divisor of
  /// `shards` that is <= sqrt(shards), so the grid is as square as the
  /// shard count allows (4 -> 2x2, 8 -> 2x4, 16 -> 4x4).
  ShardGrid(Vertex vertex_count, std::size_t shards,
            std::size_t grid_rows = 0);

  [[nodiscard]] Vertex vertex_count() const noexcept { return n_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return rows_ * cols_;
  }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  /// Grid coordinates <-> shard id (row-major shard ids).
  [[nodiscard]] std::size_t shard_at(std::size_t row,
                                     std::size_t col) const noexcept {
    SEMBFS_ASSERT(row < rows_ && col < cols_);
    return row * cols_ + col;
  }
  [[nodiscard]] std::size_t row_of(std::size_t shard) const noexcept {
    SEMBFS_ASSERT(shard < shard_count());
    return shard / cols_;
  }
  [[nodiscard]] std::size_t col_of(std::size_t shard) const noexcept {
    SEMBFS_ASSERT(shard < shard_count());
    return shard % cols_;
  }

  /// Edge-block ranges of shard (row_of(k), col_of(k)).
  [[nodiscard]] VertexRange row_block(std::size_t row) const noexcept {
    return row_partition_.range_of(row);
  }
  [[nodiscard]] VertexRange col_block(std::size_t col) const noexcept {
    return col_partition_.range_of(col);
  }
  [[nodiscard]] VertexRange source_range(std::size_t shard) const noexcept {
    return row_block(row_of(shard));
  }
  [[nodiscard]] VertexRange destination_range(
      std::size_t shard) const noexcept {
    return col_block(col_of(shard));
  }

  /// Column-major owner index of shard k (q = col * rows + row).
  [[nodiscard]] std::size_t owner_index(std::size_t shard) const noexcept {
    return col_of(shard) * rows_ + row_of(shard);
  }
  /// BFS-state block owned exclusively by shard k. Nests inside
  /// col_block(col_of(k)) (so claims stay in the grid column) and inside
  /// row_block(publish_row(k)) (the row its frontier is published to).
  [[nodiscard]] VertexRange owner_block(std::size_t shard) const noexcept {
    return owner_partition_.range_of(owner_index(shard));
  }
  /// Shard owning the BFS state of vertex v.
  [[nodiscard]] std::size_t owner_of(Vertex v) const noexcept {
    const std::size_t q = owner_partition_.node_of(v);
    return shard_at(q % rows_, q / rows_);
  }

  /// Grid row whose row block contains owner_block(shard) — the row this
  /// owner's frontier must be published to (those shards hold the edges
  /// whose sources are the owner's vertices).
  [[nodiscard]] std::size_t publish_row(std::size_t shard) const noexcept {
    return owner_index(shard) / cols_;
  }

  /// Shard ids of grid row / column members, ascending.
  [[nodiscard]] std::vector<std::size_t> row_members(std::size_t row) const;
  [[nodiscard]] std::vector<std::size_t> col_members(std::size_t col) const;

 private:
  Vertex n_ = 0;
  std::size_t rows_ = 1;
  std::size_t cols_ = 1;
  VertexPartition row_partition_;
  VertexPartition col_partition_;
  VertexPartition owner_partition_;
};

}  // namespace sembfs::shard
