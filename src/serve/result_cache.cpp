#include "serve/result_cache.hpp"

#include "util/contracts.hpp"

namespace sembfs::serve {

ResultCache::ResultCache(std::size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes),
      obs_hits_(&obs::metrics().counter("serve.cache.hits")),
      obs_misses_(&obs::metrics().counter("serve.cache.misses")),
      obs_insertions_(&obs::metrics().counter("serve.cache.insertions")),
      obs_evictions_(&obs::metrics().counter("serve.cache.evictions")),
      obs_bytes_(&obs::metrics().gauge("serve.cache.bytes")) {
  SEMBFS_EXPECTS(capacity_bytes_ >= 1);
}

std::size_t ResultCache::entry_bytes(const QueryResult& result) {
  // Payload vectors dominate; the constant covers the Entry, list node,
  // index slot, and QueryResult scalars.
  constexpr std::size_t kOverhead = 256;
  return kOverhead + result.level.size() * sizeof(std::int32_t) +
         result.parent.size() * sizeof(Vertex);
}

std::shared_ptr<const QueryResult> ResultCache::lookup(
    Vertex root, const QueryOptions& options) {
  const std::lock_guard<std::mutex> lock{mutex_};
  const auto it = index_.find(make_key_locked(root, options));
  if (it == index_.end()) {
    ++stats_.misses;
    if (obs::enabled()) obs_misses_->add(1);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++stats_.hits;
  if (obs::enabled()) obs_hits_->add(1);
  return it->second->result;
}

void ResultCache::insert(Vertex root, const QueryOptions& options,
                         const QueryResult& result) {
  insert_impl(root, options, result, /*check_generation=*/false, 0);
}

void ResultCache::insert(Vertex root, const QueryOptions& options,
                         const QueryResult& result,
                         std::uint64_t expected_generation) {
  insert_impl(root, options, result, /*check_generation=*/true,
              expected_generation);
}

void ResultCache::insert_impl(Vertex root, const QueryOptions& options,
                              const QueryResult& result, bool check_generation,
                              std::uint64_t expected_generation) {
  auto shared = std::make_shared<const QueryResult>(result);
  const std::size_t bytes = entry_bytes(*shared);
  const std::lock_guard<std::mutex> lock{mutex_};
  if (check_generation && generation_ != expected_generation) {
    // The graph moved on while this result was computed: caching it would
    // serve a pre-publication answer under the post-publication key.
    ++stats_.stale_inserts;
    return;
  }
  if (bytes > capacity_bytes_) return;  // would evict everything for one key
  const Key key = make_key_locked(root, options);
  const auto it = index_.find(key);
  if (it != index_.end()) erase_locked(it->second);
  evict_until_fits_locked(bytes);
  lru_.push_front(Entry{key, std::move(shared), bytes});
  index_.emplace(key, lru_.begin());
  stats_.bytes += bytes;
  ++stats_.entries;
  ++stats_.insertions;
  if (obs::enabled()) {
    obs_insertions_->add(1);
    obs_bytes_->set(static_cast<std::int64_t>(stats_.bytes));
  }
}

std::vector<ResultCache::TakenEntry> ResultCache::take_entries() {
  const std::lock_guard<std::mutex> lock{mutex_};
  std::vector<TakenEntry> taken;
  taken.reserve(lru_.size());
  // Back-to-front = least-recent first: re-inserting in this order
  // reproduces the original recency (push_front puts later items on top).
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it)
    taken.push_back(TakenEntry{it->key.root, it->key.max_levels,
                               std::move(it->result)});
  drop_all_locked();
  return taken;
}

void ResultCache::bump_generation() {
  const std::lock_guard<std::mutex> lock{mutex_};
  ++generation_;
  ++stats_.invalidations;
  // Old-generation keys can never be looked up again; free them now
  // rather than waiting for LRU pressure.
  drop_all_locked();
}

void ResultCache::drop_all_locked() {
  lru_.clear();
  index_.clear();
  stats_.bytes = 0;
  stats_.entries = 0;
  if (obs::enabled()) obs_bytes_->set(0);
}

std::uint64_t ResultCache::generation() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return generation_;
}

ResultCacheStats ResultCache::stats() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return stats_;
}

void ResultCache::evict_until_fits_locked(std::size_t incoming_bytes) {
  while (!lru_.empty() && stats_.bytes + incoming_bytes > capacity_bytes_) {
    erase_locked(std::prev(lru_.end()));
    ++stats_.evictions;
    if (obs::enabled()) obs_evictions_->add(1);
  }
}

void ResultCache::erase_locked(LruList::iterator it) {
  SEMBFS_ASSERT(stats_.bytes >= it->bytes && stats_.entries >= 1);
  stats_.bytes -= it->bytes;
  --stats_.entries;
  index_.erase(it->key);
  lru_.erase(it);
  if (obs::enabled()) obs_bytes_->set(static_cast<std::int64_t>(stats_.bytes));
}

}  // namespace sembfs::serve
