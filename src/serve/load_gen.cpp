#include "serve/load_gen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "util/contracts.hpp"
#include "util/statistics.hpp"
#include "util/timer.hpp"

namespace sembfs::serve {

namespace {

constexpr double kPi = 3.14159265358979323846;

void sleep_ms(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>{ms});
}

/// Sleeps according to the arrival pattern before the next submission.
/// `elapsed_ms` is wall time since the run started (shared across
/// clients so Burst windows line up fleet-wide).
void pace(const LoadGenConfig& config, double elapsed_ms, Xoroshiro128& rng) {
  switch (config.arrival) {
    case ArrivalPattern::Closed:
      return;
    case ArrivalPattern::Burst: {
      const double period = std::max(config.period_ms, 1e-3);
      const double on = period * std::clamp(config.burst_duty, 1e-3, 1.0);
      const double phase = std::fmod(elapsed_ms, period);
      if (phase >= on) sleep_ms(period - phase);  // wait for the next window
      return;
    }
    case ArrivalPattern::Diurnal: {
      const double period = std::max(config.period_ms, 1e-3);
      const double scale =
          1.0 + std::sin(2.0 * kPi * elapsed_ms / period);
      // Jitter breaks the lockstep a shared wall clock would impose.
      sleep_ms(config.think_ms * scale * (0.5 + 0.5 * rng.next_double()));
      return;
    }
  }
}

}  // namespace

const char* to_string(ArrivalPattern pattern) noexcept {
  switch (pattern) {
    case ArrivalPattern::Closed:
      return "closed";
    case ArrivalPattern::Burst:
      return "burst";
    case ArrivalPattern::Diurnal:
      return "diurnal";
  }
  return "unknown";
}

Vertex zipf_root(Xoroshiro128& rng, Vertex vertex_count, double theta) {
  SEMBFS_EXPECTS(vertex_count > 0);
  if (theta <= 0.0)
    return static_cast<Vertex>(
        rng.next_below(static_cast<std::uint64_t>(vertex_count)));
  // Continuous inverse CDF of p(r) ~ r^-theta over ranks [1, n]: for
  // theta == 1 the CDF is ln(r)/ln(n); otherwise
  // (r^(1-theta) - 1) / (n^(1-theta) - 1). Solving for r at uniform u
  // gives the rank; rank 1 (vertex id 0) is the hottest, matching the
  // degree-descending relabel that puts hubs at low ids.
  const double n = static_cast<double>(vertex_count);
  const double u = std::max(rng.next_double(), 1e-12);
  double rank;
  if (std::abs(theta - 1.0) < 1e-9) {
    rank = std::exp(u * std::log(n));
  } else {
    const double one_minus = 1.0 - theta;
    rank = std::pow(u * (std::pow(n, one_minus) - 1.0) + 1.0, 1.0 / one_minus);
  }
  const auto id = static_cast<Vertex>(rank) - 1;
  return std::clamp<Vertex>(id, 0, vertex_count - 1);
}

std::vector<Vertex> generate_trace(std::uint64_t seed, std::size_t count,
                                   Vertex vertex_count, double zipf_theta) {
  SEMBFS_EXPECTS(vertex_count > 0);
  std::vector<Vertex> roots;
  roots.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Xoroshiro128 rng{derive_seed(seed, i)};
    roots.push_back(zipf_root(rng, vertex_count, zipf_theta));
  }
  return roots;
}

LoadGenReport run_load(QueryEngine& engine, Vertex vertex_count,
                       const LoadGenConfig& config) {
  SEMBFS_EXPECTS(config.clients >= 1);
  SEMBFS_EXPECTS(config.tenants >= 1);
  SEMBFS_EXPECTS(vertex_count > 0);

  struct ClientTally {
    std::uint64_t retries = 0;
    std::uint64_t done = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t deadline_expired = 0;
    std::uint64_t rejected = 0;
    std::uint64_t high_done = 0;
    std::uint64_t high_deadline_expired = 0;
    std::vector<double> latencies_ms;
  };
  std::vector<ClientTally> tallies(config.clients);

  Timer wall;
  {
    std::vector<std::thread> clients;
    clients.reserve(config.clients);
    for (std::size_t c = 0; c < config.clients; ++c) {
      clients.emplace_back([&, c] {
        ClientTally& tally = tallies[c];
        const bool high = c < config.high_priority_clients;
        QueryOptions options = config.options;
        options.priority = high ? Priority::High : Priority::Normal;
        options.tenant = static_cast<std::uint32_t>(c % config.tenants);
        Xoroshiro128 rng{derive_seed(config.seed, c)};
        for (std::size_t i = 0; i < config.queries_per_client; ++i) {
          pace(config, wall.milliseconds(), rng);
          const Vertex root = zipf_root(rng, vertex_count, config.zipf_theta);
          // One logical query = first submission + bounded retries after
          // Rejected, with exponential backoff + seeded jitter (no
          // hot-spin: a full admission queue used to be resubmitted
          // into immediately, burning a core per rejected client).
          std::size_t attempt = 0;
          for (;;) {
            Timer latency;
            const QueryRef query = engine.submit(root, options);
            query->wait();
            const QueryState state = query->state();
            if (state == QueryState::Rejected) {
              if (attempt >= config.max_retries) {
                ++tally.rejected;  // budget exhausted: logical rejection
                break;
              }
              ++tally.retries;
              const double backoff =
                  config.retry_backoff_ms *
                  static_cast<double>(std::uint64_t{1} << std::min<std::size_t>(
                                          attempt, 20)) *
                  (0.5 + 0.5 * rng.next_double());
              sleep_ms(backoff);
              ++attempt;
              continue;
            }
            switch (state) {
              case QueryState::Done:
                ++tally.done;
                if (query->result().cache_hit) ++tally.cache_hits;
                if (high) ++tally.high_done;
                break;
              case QueryState::Failed:
                ++tally.failed;
                break;
              case QueryState::Cancelled:
                ++tally.cancelled;
                break;
              case QueryState::DeadlineExpired:
                ++tally.deadline_expired;
                if (high) ++tally.high_deadline_expired;
                break;
              default:
                SEMBFS_ASSERT(false && "wait() returned non-terminal");
                break;
            }
            tally.latencies_ms.push_back(latency.milliseconds());
            break;
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }

  LoadGenReport report;
  report.seconds = wall.seconds();
  report.issued = config.clients * config.queries_per_client;
  report.high_issued =
      std::min(config.high_priority_clients, config.clients) *
      config.queries_per_client;
  std::vector<double> latencies;
  for (const ClientTally& tally : tallies) {
    report.retries += tally.retries;
    report.done += tally.done;
    report.cache_hits += tally.cache_hits;
    report.failed += tally.failed;
    report.cancelled += tally.cancelled;
    report.deadline_expired += tally.deadline_expired;
    report.rejected += tally.rejected;
    report.high_done += tally.high_done;
    report.high_deadline_expired += tally.high_deadline_expired;
    latencies.insert(latencies.end(), tally.latencies_ms.begin(),
                     tally.latencies_ms.end());
  }
  const std::uint64_t accepted = report.issued - report.rejected;
  if (report.seconds > 0.0) {
    report.qps = static_cast<double>(report.done) / report.seconds;
    report.offered_qps = static_cast<double>(accepted) / report.seconds;
  }
  if (!latencies.empty()) {
    double sum = 0.0;
    for (const double v : latencies) sum += v;
    report.mean_ms = sum / static_cast<double>(latencies.size());
    std::sort(latencies.begin(), latencies.end());
    report.p50_ms = sorted_quantile(latencies, 0.50);
    report.p95_ms = sorted_quantile(latencies, 0.95);
    report.p99_ms = sorted_quantile(latencies, 0.99);
  }
  return report;
}

}  // namespace sembfs::serve
