#include "serve/load_gen.hpp"

#include <algorithm>
#include <thread>

#include "util/contracts.hpp"
#include "util/prng.hpp"
#include "util/statistics.hpp"
#include "util/timer.hpp"

namespace sembfs::serve {

std::vector<Vertex> generate_trace(std::uint64_t seed, std::size_t count,
                                   Vertex vertex_count) {
  SEMBFS_EXPECTS(vertex_count > 0);
  std::vector<Vertex> roots;
  roots.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Xoroshiro128 rng{derive_seed(seed, i)};
    roots.push_back(static_cast<Vertex>(
        rng.next_below(static_cast<std::uint64_t>(vertex_count))));
  }
  return roots;
}

LoadGenReport run_load(QueryEngine& engine, Vertex vertex_count,
                       const LoadGenConfig& config) {
  SEMBFS_EXPECTS(config.clients >= 1);
  SEMBFS_EXPECTS(vertex_count > 0);

  struct ClientTally {
    std::uint64_t done = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t deadline_expired = 0;
    std::uint64_t rejected = 0;
    std::vector<double> latencies_ms;
  };
  std::vector<ClientTally> tallies(config.clients);

  Timer wall;
  {
    std::vector<std::thread> clients;
    clients.reserve(config.clients);
    for (std::size_t c = 0; c < config.clients; ++c) {
      clients.emplace_back([&, c] {
        ClientTally& tally = tallies[c];
        Xoroshiro128 rng{derive_seed(config.seed, c)};
        for (std::size_t i = 0; i < config.queries_per_client; ++i) {
          const auto root = static_cast<Vertex>(
              rng.next_below(static_cast<std::uint64_t>(vertex_count)));
          Timer latency;
          const QueryRef query = engine.submit(root, config.options);
          query->wait();
          switch (query->state()) {
            case QueryState::Done:
              ++tally.done;
              break;
            case QueryState::Failed:
              ++tally.failed;
              break;
            case QueryState::Cancelled:
              ++tally.cancelled;
              break;
            case QueryState::DeadlineExpired:
              ++tally.deadline_expired;
              break;
            case QueryState::Rejected:
              ++tally.rejected;
              continue;  // never entered the engine: no latency sample
            default:
              SEMBFS_ASSERT(false && "wait() returned non-terminal");
              break;
          }
          tally.latencies_ms.push_back(latency.milliseconds());
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }

  LoadGenReport report;
  report.seconds = wall.seconds();
  report.issued = config.clients * config.queries_per_client;
  std::vector<double> latencies;
  for (const ClientTally& tally : tallies) {
    report.done += tally.done;
    report.failed += tally.failed;
    report.cancelled += tally.cancelled;
    report.deadline_expired += tally.deadline_expired;
    report.rejected += tally.rejected;
    latencies.insert(latencies.end(), tally.latencies_ms.begin(),
                     tally.latencies_ms.end());
  }
  const std::uint64_t accepted = report.issued - report.rejected;
  if (report.seconds > 0.0) {
    report.qps = static_cast<double>(report.done) / report.seconds;
    report.offered_qps = static_cast<double>(accepted) / report.seconds;
  }
  if (!latencies.empty()) {
    double sum = 0.0;
    for (const double v : latencies) sum += v;
    report.mean_ms = sum / static_cast<double>(latencies.size());
    std::sort(latencies.begin(), latencies.end());
    report.p50_ms = sorted_quantile(latencies, 0.50);
    report.p95_ms = sorted_quantile(latencies, 0.95);
    report.p99_ms = sorted_quantile(latencies, 0.99);
  }
  return report;
}

}  // namespace sembfs::serve
