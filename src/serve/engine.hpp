// QueryEngine: the concurrent BFS serving engine over one shared
// semi-external graph.
//
// Shape (the pool-exclusivity contract, parallel/thread_pool.hpp): ONE
// dispatcher thread owns the ThreadPool and interleaves every query's
// work through it —
//
//   clients ── submit() ──> hot-root result cache ──> hit: finalized here
//                 │               (miss)
//                 ├── tenant quota / bounded queue ──> reject
//                 └──> admission deque ──> dispatcher ──> ThreadPool
//                                             │
//                                             ├─ single-query sessions
//                                             │  (slot-pooled BfsSession,
//                                             │   one level per tick,
//                                             │   high lane admitted first)
//                                             └─ one MS-BFS batch
//                                                (≤64 lanes, one level
//                                                 per tick, cost-aware
//                                                 batch formation)
//
// Queries marked batchable ride the MS-BFS kernel (serve/ms_bfs.hpp): up
// to 64 roots per traversal, same-root queries deduped onto one lane,
// total riders capped by max_batch_queries. Batch formation is
// traffic-shaped by default (PlannerMode::CostAware): the dispatcher
// captures a PlannerInput — root degrees, deadline slacks, priorities,
// and one device-congestion sample — and the planner orders high-priority
// entries first, then by laxity (slack minus predicted cost), so a cheap
// near-deadline query jumps ahead of an expensive slack one
// (serve/batch_planner.hpp, serve/cost_model.hpp). Non-batchable queries
// each get a BfsSession borrowing a status slot (serve/slot_pool.hpp),
// the high lane admitted before the normal one. Concurrency-of-service is
// level interleaving: every active query advances one level per
// dispatcher tick, so a deep search cannot starve short ones, and each
// level still uses the whole pool.
//
// Admission is traffic-shaped three ways: per-tenant quotas (a tenant at
// its accepted-and-unfinished cap is rejected immediately, billed to
// serve.tenant.<id>.*), a high/normal priority lane pair (high_reserve
// keeps headroom only the high lane may use), and a bounded bytes-sized
// result cache for popular roots (cache_bytes) — a hit is finalized
// inside submit() without touching the dispatcher, keyed on
// root + options + graph generation.
//
// Mutable graphs (docs/MUTATIONS.md): constructed over a MutableGraph,
// the engine serves with snapshot isolation — every admission (session,
// batch, analytics) pins the latest published GraphSnapshot for its whole
// run, so a traversal in flight across an apply()/compact() keeps reading
// one consistent merged view while new admissions see the new version.
// The publish hook keeps the result cache honest: a delta with deletions
// bumps the cache generation (drop everything); an insert-only delta
// MIGRATES the cached full traversals instead, patching each level/parent
// array through the incremental repair kernel (bfs/repair.hpp) and
// re-inserting it under the new generation; a compaction publish changes
// no logical edge, so the cache is left untouched. Results computed on a
// pre-publication snapshot carry the generation captured at admission and
// are dropped by the generation-checked insert rather than cached under
// the new key space.
//
// Deadlines are end-to-end from submit() — a query can expire while
// queued (the backpressure signal) or mid-search (the session/batch stops
// at the next level boundary and the partial traversal is returned).
//
// Fault containment: a session query whose I/O error budget is exhausted
// beyond the degrade path fails ALONE — the NvmIoError is caught per
// query and neighbors keep running. A batch shares one traversal, so its
// blast radius is the batch (documented in docs/SERVING.md); in the
// external-forward scenarios batches run entirely on the DRAM backward
// side and cannot take device faults at all.
//
// Determinism: with autostart=false, submit the whole trace, then
// start(); batch formation then depends only on the captured
// PlannerInput (which a PlannerLog can record, like TraceLog records
// SwitchPolicy decisions), so a seeded trace replays byte-identical
// results (tests/test_serve_*).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bfs/hybrid_bfs.hpp"
#include "engine/pagerank_program.hpp"
#include "graph/mutable_graph.hpp"
#include "engine/triangle_program.hpp"
#include "numa/topology.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/batch_planner.hpp"
#include "serve/cost_model.hpp"
#include "serve/ms_bfs.hpp"
#include "serve/query.hpp"
#include "serve/result_cache.hpp"
#include "serve/slot_pool.hpp"

namespace sembfs::serve {

struct EngineConfig {
  /// Admission queue bound; submit() beyond this is Rejected immediately.
  std::size_t queue_capacity = 256;
  /// Queue slots only Priority::High submissions may occupy (must be <
  /// queue_capacity). Normal traffic is rejected once the queue reaches
  /// capacity - high_reserve, so a burst cannot starve the high lane of
  /// admission. 0 = no reserved headroom.
  std::size_t high_reserve = 0;
  /// BfsStatus slots = concurrent single-query sessions.
  std::size_t session_slots = 4;
  /// Concurrent analytics queries (each owns its program state — DRAM for
  /// labels/ranks — so the cap bounds memory, not status slots).
  std::size_t analytics_slots = 2;
  /// Lanes per MS-BFS batch (1..MsBfsBatch::kMaxBatch).
  std::size_t max_batch = MsBfsBatch::kMaxBatch;
  /// Cap on TOTAL queries one batch may absorb, same-root riders
  /// included (0 = unlimited). Without it a skewed root distribution lets
  /// one batch swallow the whole queue as riders of a single lane —
  /// unbounded finalize/copy cost and no deadline culling until the batch
  /// retires.
  std::size_t max_batch_queries = 2 * MsBfsBatch::kMaxBatch;
  /// Batch formation policy. CostAware is the serving default; Fifo is
  /// the measurable baseline (--serve-planner fifo).
  PlannerMode planner = PlannerMode::CostAware;
  /// Cost-model constants for the CostAware planner.
  CostModelParams cost;
  /// Records every (PlannerInput, PlanDecision) pair; nullptr = off.
  PlannerLog* planner_log = nullptr;
  /// Per-tenant cap on accepted-and-unfinished queries; a tenant at the
  /// cap is rejected immediately. 0 = unlimited.
  std::uint64_t tenant_quota = 0;
  /// Hot-root result cache capacity in bytes; 0 disables the cache.
  std::size_t cache_bytes = 0;
  /// Deadline applied when QueryOptions::deadline_ms <= 0; 0 = none.
  double default_deadline_ms = 0.0;
  /// Start the dispatcher in the constructor. false = deferred start for
  /// deterministic trace replay: submit everything, then start().
  bool autostart = true;
  /// Template for single-query sessions (cancel is overwritten per query).
  BfsConfig bfs;
  /// MS-BFS kernel knobs shared by every batch.
  MsBfsConfig msbfs;
  /// Engine-wide analytics knobs (per-query overrides are not exposed —
  /// mixed traffic shares one tuning, like `bfs` above).
  engine::PageRankOptions pagerank;
  engine::TriangleOptions triangles;
};

/// Engine-lifetime totals, independent of the obs registry (always on,
/// plain counters — the dispatcher is the only writer).
struct EngineStats {
  std::uint64_t submitted = 0;   ///< every submit() call, rejects included
  std::uint64_t rejected = 0;
  std::uint64_t quota_rejected = 0;  ///< subset of rejected: tenant quota
  std::uint64_t done = 0;            ///< cache hits included
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t high_deadline_expired = 0;  ///< subset: Priority::High
  std::uint64_t session_queries = 0;  ///< served by a BfsSession
  std::uint64_t batched_queries = 0;  ///< served by an MS-BFS lane
  std::uint64_t batches = 0;
  std::uint64_t analytics_queries = 0;  ///< served by a ProgramSession
  std::uint64_t cache_hits = 0;         ///< served from the result cache
  // Mutable-graph integration (zero without an attached MutableGraph).
  std::uint64_t snapshots_published = 0;     ///< publish-hook invocations
  std::uint64_t cache_entries_migrated = 0;  ///< repaired across a publish
  std::uint64_t cache_entries_dropped = 0;   ///< invalidated by a publish
};

class QueryEngine {
 public:
  /// The graph, topology and pool must outlive the engine. While the
  /// engine runs the pool belongs to its dispatcher exclusively.
  QueryEngine(GraphStorage storage, const NumaTopology& topology,
              ThreadPool& pool, EngineConfig config = {});

  /// Serves a mutable graph with snapshot isolation: admissions pin the
  /// latest published snapshot, and the engine registers the graph's
  /// publish hook (released in the destructor) to track new versions and
  /// migrate/invalidate the result cache. The graph must outlive the
  /// engine; no other publish hook may be registered while it runs.
  QueryEngine(MutableGraph& graph, const NumaTopology& topology,
              ThreadPool& pool, EngineConfig config = {});
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Thread-safe. Returns the query handle in every case — a rejected
  /// query comes back already finalized with QueryState::Rejected, and a
  /// result-cache hit comes back already finalized Done with
  /// QueryResult::cache_hit set.
  QueryRef submit(Vertex root, QueryOptions options = {});

  /// Submits a whole-graph analytics query (kind != Bfs); the root concept
  /// does not apply. Analytics queries are never batched or cached — each
  /// runs its own engine::ProgramSession, one superstep per dispatcher
  /// tick, with the same per-query fault containment as sessions.
  QueryRef submit_analytics(QueryKind kind, QueryOptions options = {});

  /// Starts the dispatcher (no-op when already started / autostart).
  void start();
  /// Blocks until every accepted query is terminal. Requires a started
  /// dispatcher.
  void drain();
  /// Stops admissions, drains everything in flight, joins the dispatcher.
  /// Idempotent; the destructor calls it.
  void shutdown();

  /// Drops every cached result (generation bump). Mutable-graph engines
  /// do this automatically through the publish hook; this is the manual
  /// escape hatch (and the sealed-engine invalidation path for callers
  /// that mutate storage out of band). No-op when the cache is disabled.
  void invalidate_cache();

  [[nodiscard]] EngineStats stats() const;
  /// Result-cache counters; zeros when the cache is disabled.
  [[nodiscard]] ResultCacheStats cache_stats() const;
  [[nodiscard]] std::size_t queue_depth() const;
  /// Accepted queries not yet terminal (queued + executing).
  [[nodiscard]] std::uint64_t in_flight() const;
  [[nodiscard]] const EngineConfig& config() const noexcept {
    return config_;
  }

 private:
  struct ActiveSession;
  struct ActiveBatch;
  struct ActiveAnalytics;
  /// Per-tenant admission state: the quota count plus the lazily resolved
  /// serve.tenant.<id>.* counters.
  struct TenantState {
    std::uint64_t in_flight = 0;
    obs::Counter* submitted = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* completed = nullptr;
  };

  void dispatcher_loop();
  /// Common admission path for BFS and analytics submissions.
  QueryRef submit_impl(Vertex root, QueryOptions options);
  /// Finalizes queued queries whose token fired before execution started.
  void cull_queued(std::deque<QueryRef>& queued);
  void admit_sessions(std::deque<QueryRef>& queued,
                      std::vector<ActiveSession>& sessions);
  void admit_analytics(std::deque<QueryRef>& queued,
                       std::vector<ActiveAnalytics>& analytics);
  void step_analytics(std::vector<ActiveAnalytics>& analytics);
  [[nodiscard]] std::unique_ptr<ActiveBatch> make_batch(
      std::deque<QueryRef>& queued);
  void step_sessions(std::vector<ActiveSession>& sessions);
  /// One batch tick: cull fired riders, run one level, finalize finished
  /// riders. True when the batch is finished and should be dropped.
  bool tick_batch(ActiveBatch& batch);

  /// Finalizes `query`, updates stats/gauges, feeds the result cache
  /// (insert checked against `cache_generation`, the generation captured
  /// when the query's snapshot was pinned), wakes drain() waiters.
  void finalize_query(const QueryRef& query, QueryResult result,
                      std::uint64_t cache_generation);

  /// Root degree without device I/O (0 when only external forward storage
  /// could answer) — the planner must never block on the device. Degree
  /// reads through `storage`'s delta overlay when one is present.
  [[nodiscard]] static std::int64_t cheap_degree(const GraphStorage& storage,
                                                 Vertex v);

  /// The view new work runs on: pins (via `pin`) the latest published
  /// snapshot when a mutable graph is attached, else the sealed storage
  /// the engine was built over. `cache_generation` receives the result
  /// cache's current generation, captured atomically with the pin (both
  /// under mutex_, which the publish hook also holds while it advances
  /// them) so a result can never be cached under a newer key space than
  /// the view it was computed on.
  [[nodiscard]] GraphStorage resolve_storage(
      std::shared_ptr<const GraphSnapshot>& pin,
      std::uint64_t& cache_generation) const;

  /// MutableGraph publish hook: records the new snapshot for future
  /// admissions and migrates or invalidates the result cache. Runs on the
  /// writer's thread, serialized by the graph's writer lock.
  void on_publish(const std::shared_ptr<const GraphSnapshot>& snapshot);

  /// Resolves (lazily creating) the tenant's state; mutex_ must be held.
  TenantState& tenant_state_locked(std::uint32_t tenant);

  /// The construction-time storage view. Sealed-storage engines use it
  /// for every query (the caller guarantees its lifetime); mutable-graph
  /// engines must NOT dereference it after the first publication — the
  /// snapshot it borrows from may have been compacted away. Admissions
  /// resolve latest_ instead.
  GraphStorage storage_;
  Vertex vertex_count_ = 0;  ///< invariant across publications
  MutableGraph* mutable_graph_ = nullptr;  ///< null: sealed-storage engine
  /// Latest published snapshot (mutable-graph engines only); guarded by
  /// mutex_.
  std::shared_ptr<const GraphSnapshot> latest_;
  NumaTopology topology_;  ///< by value: ctor arg may be a temporary
  ThreadPool& pool_;
  EngineConfig config_;
  StatusSlotPool slots_;
  std::unique_ptr<ResultCache> cache_;  ///< null when cache_bytes == 0
  CongestionProbe probe_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< wakes the dispatcher
  std::condition_variable drain_cv_;  ///< wakes drain() waiters
  std::deque<QueryRef> queue_;        ///< admission order preserved
  std::unordered_map<std::uint32_t, TenantState> tenants_;
  std::uint64_t in_flight_ = 0;
  bool stop_ = false;
  bool started_ = false;
  QueryId next_id_ = 1;
  EngineStats stats_;
  std::thread dispatcher_;

  // Observability handles (resolved once; add/record gated on enabled()).
  obs::Counter* obs_submitted_;
  obs::Counter* obs_rejected_;
  obs::Counter* obs_quota_rejected_;
  obs::Counter* obs_done_;
  obs::Counter* obs_failed_;
  obs::Counter* obs_cancelled_;
  obs::Counter* obs_deadline_expired_;
  obs::Counter* obs_high_deadline_expired_;
  obs::Counter* obs_session_queries_;
  obs::Counter* obs_batched_queries_;
  obs::Counter* obs_batches_;
  obs::Counter* obs_analytics_queries_;
  obs::Gauge* obs_queue_depth_;
  obs::Gauge* obs_in_flight_;
  obs::Histogram* obs_queue_wait_us_;
  obs::Histogram* obs_exec_us_;
  obs::Histogram* obs_batch_lanes_;
};

}  // namespace sembfs::serve
