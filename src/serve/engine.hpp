// QueryEngine: the concurrent BFS serving engine over one shared
// semi-external graph.
//
// Shape (the pool-exclusivity contract, parallel/thread_pool.hpp): ONE
// dispatcher thread owns the ThreadPool and interleaves every query's
// work through it —
//
//   clients ── submit() ──> bounded queue ──> dispatcher ──> ThreadPool
//                 (reject when full)            │
//                                               ├─ single-query sessions
//                                               │  (slot-pooled BfsSession,
//                                               │   one level per tick)
//                                               └─ one MS-BFS batch
//                                                  (≤64 lanes, one level
//                                                   per tick)
//
// Queries marked batchable ride the MS-BFS kernel (serve/ms_bfs.hpp): up
// to 64 roots per traversal, same-root queries deduped onto one lane.
// Non-batchable queries each get a BfsSession borrowing a status slot
// (serve/slot_pool.hpp). Concurrency-of-service is level interleaving:
// every active query advances one level per dispatcher tick, so a
// deep search cannot starve short ones, and each level still uses the
// whole pool.
//
// Deadlines are end-to-end from submit() — a query can expire while
// queued (the backpressure signal) or mid-search (the session/batch stops
// at the next level boundary and the partial traversal is returned).
//
// Fault containment: a session query whose I/O error budget is exhausted
// beyond the degrade path fails ALONE — the NvmIoError is caught per
// query and neighbors keep running. A batch shares one traversal, so its
// blast radius is the batch (documented in docs/SERVING.md); in the
// external-forward scenarios batches run entirely on the DRAM backward
// side and cannot take device faults at all.
//
// Determinism: with autostart=false, submit the whole trace, then
// start(); batch formation then depends only on admission order, so a
// seeded trace replays byte-identical results (tests/test_serve_*).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bfs/hybrid_bfs.hpp"
#include "engine/pagerank_program.hpp"
#include "engine/triangle_program.hpp"
#include "numa/topology.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/ms_bfs.hpp"
#include "serve/query.hpp"
#include "serve/slot_pool.hpp"

namespace sembfs::serve {

struct EngineConfig {
  /// Admission queue bound; submit() beyond this is Rejected immediately.
  std::size_t queue_capacity = 256;
  /// BfsStatus slots = concurrent single-query sessions.
  std::size_t session_slots = 4;
  /// Concurrent analytics queries (each owns its program state — DRAM for
  /// labels/ranks — so the cap bounds memory, not status slots).
  std::size_t analytics_slots = 2;
  /// Lanes per MS-BFS batch (1..MsBfsBatch::kMaxBatch).
  std::size_t max_batch = MsBfsBatch::kMaxBatch;
  /// Deadline applied when QueryOptions::deadline_ms <= 0; 0 = none.
  double default_deadline_ms = 0.0;
  /// Start the dispatcher in the constructor. false = deferred start for
  /// deterministic trace replay: submit everything, then start().
  bool autostart = true;
  /// Template for single-query sessions (cancel is overwritten per query).
  BfsConfig bfs;
  /// MS-BFS kernel knobs shared by every batch.
  MsBfsConfig msbfs;
  /// Engine-wide analytics knobs (per-query overrides are not exposed —
  /// mixed traffic shares one tuning, like `bfs` above).
  engine::PageRankOptions pagerank;
  engine::TriangleOptions triangles;
};

/// Engine-lifetime totals, independent of the obs registry (always on,
/// plain counters — the dispatcher is the only writer).
struct EngineStats {
  std::uint64_t submitted = 0;   ///< every submit() call, rejects included
  std::uint64_t rejected = 0;
  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t session_queries = 0;  ///< served by a BfsSession
  std::uint64_t batched_queries = 0;  ///< served by an MS-BFS lane
  std::uint64_t batches = 0;
  std::uint64_t analytics_queries = 0;  ///< served by a ProgramSession
};

class QueryEngine {
 public:
  /// The graph, topology and pool must outlive the engine. While the
  /// engine runs the pool belongs to its dispatcher exclusively.
  QueryEngine(GraphStorage storage, const NumaTopology& topology,
              ThreadPool& pool, EngineConfig config = {});
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Thread-safe. Returns the query handle in every case — a rejected
  /// query comes back already finalized with QueryState::Rejected.
  QueryRef submit(Vertex root, QueryOptions options = {});

  /// Submits a whole-graph analytics query (kind != Bfs); the root concept
  /// does not apply. Analytics queries are never batched — each runs its
  /// own engine::ProgramSession, one superstep per dispatcher tick, with
  /// the same per-query fault containment as sessions.
  QueryRef submit_analytics(QueryKind kind, QueryOptions options = {});

  /// Starts the dispatcher (no-op when already started / autostart).
  void start();
  /// Blocks until every accepted query is terminal. Requires a started
  /// dispatcher.
  void drain();
  /// Stops admissions, drains everything in flight, joins the dispatcher.
  /// Idempotent; the destructor calls it.
  void shutdown();

  [[nodiscard]] EngineStats stats() const;
  [[nodiscard]] std::size_t queue_depth() const;
  /// Accepted queries not yet terminal (queued + executing).
  [[nodiscard]] std::uint64_t in_flight() const;
  [[nodiscard]] const EngineConfig& config() const noexcept {
    return config_;
  }

 private:
  struct ActiveSession;
  struct ActiveBatch;
  struct ActiveAnalytics;

  void dispatcher_loop();
  /// Finalizes queued queries whose token fired before execution started.
  void cull_queued(std::vector<QueryRef>& queued);
  void admit_sessions(std::vector<QueryRef>& queued,
                      std::vector<ActiveSession>& sessions);
  void admit_analytics(std::vector<QueryRef>& queued,
                       std::vector<ActiveAnalytics>& analytics);
  void step_analytics(std::vector<ActiveAnalytics>& analytics);
  [[nodiscard]] std::unique_ptr<ActiveBatch> make_batch(
      std::vector<QueryRef>& queued);
  void step_sessions(std::vector<ActiveSession>& sessions);
  /// One batch tick: cull fired riders, run one level, finalize finished
  /// riders. True when the batch is finished and should be dropped.
  bool tick_batch(ActiveBatch& batch);

  /// Finalizes `query`, updates stats/gauges, wakes drain() waiters.
  void finalize_query(const QueryRef& query, QueryResult result);

  GraphStorage storage_;
  const NumaTopology& topology_;
  ThreadPool& pool_;
  EngineConfig config_;
  StatusSlotPool slots_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< wakes the dispatcher
  std::condition_variable drain_cv_;  ///< wakes drain() waiters
  std::vector<QueryRef> queue_;       ///< admission order preserved
  std::uint64_t in_flight_ = 0;
  bool stop_ = false;
  bool started_ = false;
  QueryId next_id_ = 1;
  EngineStats stats_;
  std::thread dispatcher_;

  // Observability handles (resolved once; add/record gated on enabled()).
  obs::Counter* obs_submitted_;
  obs::Counter* obs_rejected_;
  obs::Counter* obs_done_;
  obs::Counter* obs_failed_;
  obs::Counter* obs_cancelled_;
  obs::Counter* obs_deadline_expired_;
  obs::Counter* obs_session_queries_;
  obs::Counter* obs_batched_queries_;
  obs::Counter* obs_batches_;
  obs::Counter* obs_analytics_queries_;
  obs::Gauge* obs_queue_depth_;
  obs::Gauge* obs_in_flight_;
  obs::Histogram* obs_queue_wait_us_;
  obs::Histogram* obs_exec_us_;
  obs::Histogram* obs_batch_lanes_;
};

}  // namespace sembfs::serve
