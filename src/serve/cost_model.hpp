// Query cost prediction and the device congestion probe behind it.
//
// The cost-aware batch planner (serve/batch_planner.hpp) needs two
// signals per queued query: how expensive the query is likely to be, and
// how congested the storage device currently is. Both live here, kept
// separate from the planner so the planner itself stays a PURE function
// of a captured PlannerInput:
//
//   * predicted_cost_ms() — a deterministic formula over (root degree,
//     device queue depth, recent device queue wait). Root degree is the
//     strongest cheap predictor of a BFS query's first expensive level
//     (high-degree roots light up huge level-1 frontiers); device
//     congestion scales the whole estimate because every fetch of an
//     already-busy device queues behind the existing depth.
//   * CongestionProbe — the obs-consumer side: it reads the device queue
//     depth gauge (`nvm.queue_depth`, set by NvmDevice) and computes a
//     WINDOWED mean of the `nvm.queue_wait_us` histogram (delta of
//     count/sum since the previous sample), so the planner sees current
//     congestion, not a run-lifetime average. With metrics disabled both
//     signals read 0 and the model degrades to a degree-only estimate.
//
// The probe is sampled ONCE per batch formation and the sampled values are
// copied into the PlannerInput — that capture is what keeps planner
// decisions replayable (docs/SERVING.md, determinism contract).
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"

namespace sembfs::serve {

/// Tunable constants of the cost formula. Defaults are calibrated for
/// "ordering queries against each other", not wall-clock accuracy — the
/// planner only compares costs, it never schedules by absolute time.
struct CostModelParams {
  /// Fixed per-query overhead: admission, slot/lane setup, finalize copy.
  double base_ms = 0.05;
  /// Marginal cost per root out-edge (the level-1 frontier the query must
  /// expand no matter what).
  double ms_per_edge = 1e-4;
  /// Each request already sitting in the device queue inflates the
  /// estimate by this fraction (queueing delay is roughly linear in depth
  /// for a fixed-channel device).
  double queue_depth_factor = 0.125;
  /// Each millisecond of recent mean device queue wait adds this fraction
  /// on top — the historical signal backing up the instantaneous depth.
  double queue_wait_factor_per_ms = 0.05;
};

/// Instantaneous device congestion, as captured for one planner run.
struct CongestionSignal {
  double queue_depth = 0.0;   ///< nvm.queue_depth gauge at capture
  double avg_wait_us = 0.0;   ///< windowed mean of nvm.queue_wait_us
};

/// Deterministic, pure: same inputs, same estimate (the planner's
/// determinism contract depends on this).
[[nodiscard]] double predicted_cost_ms(std::int64_t root_degree,
                                       const CongestionSignal& congestion,
                                       const CostModelParams& params = {});

/// Samples device congestion from the metrics registry. One instance per
/// engine; sample() keeps the previous histogram count/sum so each call
/// reports the mean queue wait of the window since the last call.
class CongestionProbe {
 public:
  CongestionProbe();

  CongestionProbe(const CongestionProbe&) = delete;
  CongestionProbe& operator=(const CongestionProbe&) = delete;

  /// Reads the current signal. Cheap (two relaxed loads + one histogram
  /// count/sum read); returns zeros while obs::enabled() is false.
  [[nodiscard]] CongestionSignal sample();

 private:
  obs::Gauge* depth_gauge_;
  obs::Histogram* wait_histogram_;
  std::uint64_t last_count_ = 0;
  std::uint64_t last_sum_ = 0;
};

}  // namespace sembfs::serve
