#include "serve/batch_planner.hpp"

#include <unordered_map>

#include "util/contracts.hpp"

namespace sembfs::serve {

BatchPlan plan_batch(std::vector<QueryRef>& queued, std::size_t max_lanes,
                     std::size_t max_queries) {
  SEMBFS_EXPECTS(max_lanes >= 1);
  BatchPlan plan;
  if (queued.empty()) return plan;

  std::unordered_map<Vertex, std::size_t> lane_of_root;
  std::size_t taken = 0;
  for (const QueryRef& query : queued) {
    if (max_queries != 0 && plan.queries.size() >= max_queries) break;
    const Vertex root = query->root();
    const auto it = lane_of_root.find(root);
    std::size_t lane;
    if (it != lane_of_root.end()) {
      lane = it->second;  // rider: shares the existing lane's traversal
    } else {
      if (plan.roots.size() >= max_lanes) break;  // FIFO: stop, don't skip
      lane = plan.roots.size();
      plan.roots.push_back(root);
      lane_of_root.emplace(root, lane);
    }
    plan.queries.push_back(query);
    plan.lane_of.push_back(lane);
    ++taken;
  }
  queued.erase(queued.begin(),
               queued.begin() + static_cast<std::ptrdiff_t>(taken));
  return plan;
}

}  // namespace sembfs::serve
