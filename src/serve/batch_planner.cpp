#include "serve/batch_planner.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/contracts.hpp"

namespace sembfs::serve {

const char* to_string(PlannerMode mode) noexcept {
  switch (mode) {
    case PlannerMode::Fifo:
      return "fifo";
    case PlannerMode::CostAware:
      return "cost";
  }
  return "unknown";
}

BatchPlan plan_batch(std::deque<QueryRef>& queued, std::size_t max_lanes,
                     std::size_t max_queries) {
  SEMBFS_EXPECTS(max_lanes >= 1);
  BatchPlan plan;
  if (queued.empty()) return plan;

  std::unordered_map<Vertex, std::size_t> lane_of_root;
  std::size_t taken = 0;
  for (const QueryRef& query : queued) {
    if (max_queries != 0 && plan.queries.size() >= max_queries) break;
    const Vertex root = query->root();
    const auto it = lane_of_root.find(root);
    std::size_t lane;
    if (it != lane_of_root.end()) {
      lane = it->second;  // rider: shares the existing lane's traversal
    } else {
      if (plan.roots.size() >= max_lanes) break;  // FIFO: stop, don't skip
      lane = plan.roots.size();
      plan.roots.push_back(root);
      lane_of_root.emplace(root, lane);
    }
    plan.queries.push_back(query);
    plan.lane_of.push_back(lane);
    ++taken;
  }
  queued.erase(queued.begin(),
               queued.begin() + static_cast<std::ptrdiff_t>(taken));
  return plan;
}

PlanDecision plan_cost_batch(const PlannerInput& input) {
  SEMBFS_EXPECTS(input.max_lanes >= 1);
  PlanDecision decision;
  const std::size_t n = input.entries.size();
  if (n == 0) return decision;

  // Predicted cost per entry — deterministic given the captured input.
  std::vector<double> cost(n);
  for (std::size_t i = 0; i < n; ++i)
    cost[i] =
        predicted_cost_ms(input.entries[i].degree, input.congestion,
                          input.cost);

  // Plan order: high priority first; within a class by laxity
  // (slack - cost, ascending: the least room to spare goes first — a
  // cheap near-deadline query beats an expensive slack one on both
  // terms); admission index breaks every tie, so entries without
  // deadlines (infinite laxity) keep FIFO order at the back.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const PlannerInput::Entry& ea = input.entries[a];
    const PlannerInput::Entry& eb = input.entries[b];
    if (ea.priority != eb.priority) return ea.priority == Priority::High;
    const double la = ea.slack_ms - cost[a];
    const double lb = eb.slack_ms - cost[b];
    if (la != lb) return la < lb;
    return a < b;
  });

  std::unordered_map<Vertex, std::size_t> lane_of_root;
  for (const std::size_t i : order) {
    if (input.max_queries != 0 && decision.picked.size() >= input.max_queries)
      break;
    const Vertex root = input.entries[i].root;
    const auto it = lane_of_root.find(root);
    std::size_t lane;
    if (it != lane_of_root.end()) {
      lane = it->second;  // rider
    } else {
      // Lanes full: SKIP (unlike FIFO's stop) — a later entry may still
      // ride an existing lane, and the skipped root waits for the next
      // batch without blocking the ones behind it.
      if (decision.roots.size() >= input.max_lanes) continue;
      lane = decision.roots.size();
      decision.roots.push_back(root);
      lane_of_root.emplace(root, lane);
    }
    decision.picked.push_back(i);
    decision.lane_of.push_back(lane);
    decision.cost_ms.push_back(cost[i]);
  }
  return decision;
}

}  // namespace sembfs::serve
