// Batched multi-source BFS (MS-BFS) — the serving engine's headline
// kernel: up to 64 roots traversed in ONE search over the shared
// semi-external graph.
//
// Representation (the MS-BFS idea of Then et al., built on PR 4's
// word-parallel bitmap machinery): each vertex carries one std::uint64_t
// per status array, bit q describing query lane q —
//
//   seen[v]      lanes that have reached v at any level
//   frontier[v]  lanes whose current frontier contains v
//   next[v]      lanes claiming v this level (becomes frontier at advance)
//
// Every level is one bottom-up-shaped sweep over the backward graph: for
// each vertex not yet covered (seen ⊉ live lanes), scan its neighbors and
// OR their frontier words until the vertex is covered or the list ends.
// The word OR advances all 64 lanes at once, so one adjacency-list walk —
// and, on the hybrid backward graph, one NVM chunk fetch — serves the
// whole batch: the semi-external win amortized across tenants. The sweep
// skips 64 vertices per load via the shared word-skip helper
// (bfs/sweep.hpp) keyed on a "covered" bitmap (all live lanes have seen
// the vertex), the MS-BFS analogue of the visited bitmap.
//
// Concurrency contract (same single-writer discipline as bottom_up):
// within a level, frontier[] is read-only, and each vertex's seen/next/
// level/parent entries are written only by the worker sweeping its chunk.
// The covered bitmap is the only cross-worker write (relaxed set, stale
// zeros tolerated). advance() between levels runs on the driver thread.
//
// Memory: 24 bytes/vertex for the three words, plus 4 bytes/vertex/lane
// for levels and (optionally) parents — a full 64-lane batch with parents
// costs ~536 bytes/vertex, so batches are sized by the engine, not
// unbounded (docs/SERVING.md).
//
// Lane lifecycle: lanes can be deactivated mid-search (per-query deadline
// or cancellation). A dead lane's bits stop gathering immediately — the
// live mask filters every OR — and its partial level array stays valid.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bfs/cancel.hpp"
#include "bfs/hybrid_bfs.hpp"
#include "numa/topology.hpp"
#include "parallel/thread_pool.hpp"
#include "util/bitmap.hpp"

namespace sembfs::serve {

struct MsBfsConfig {
  /// Vertices per work-stealing chunk of the sweep (same knob as
  /// BfsConfig::bottom_up_chunk).
  std::int64_t sweep_chunk = 1024;
  /// Record per-lane parent trees (4 bytes/vertex/lane extra). Levels are
  /// always recorded; parents make results Graph500-validatable.
  bool record_parents = true;
};

class MsBfsBatch {
 public:
  static constexpr std::size_t kMaxBatch = 64;

  /// Starts a batch over `roots` (1..64 lanes; lane q = roots[q]). Uses
  /// the backward side of `storage` only — DRAM or hybrid — so it runs
  /// under every scenario, including external-forward ones.
  MsBfsBatch(const GraphStorage& storage, const NumaTopology& topology,
             ThreadPool& pool, std::span<const Vertex> roots,
             const MsBfsConfig& config = {});

  MsBfsBatch(const MsBfsBatch&) = delete;
  MsBfsBatch& operator=(const MsBfsBatch&) = delete;

  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] bool done() const noexcept { return done_; }
  /// The level step() would execute next (1 after construction).
  [[nodiscard]] std::int32_t next_level() const noexcept { return level_; }

  /// Executes ONE level for every live lane. Returns true while any lane
  /// can continue. No-op after done().
  bool step();

  /// Removes lane q from the live set (deadline/cancel): its bits stop
  /// gathering from the next step on. Its recorded levels stay valid as a
  /// partial traversal. Must be called between steps (driver thread).
  void deactivate(std::size_t q) noexcept;
  [[nodiscard]] bool lane_live(std::size_t q) const noexcept {
    return (live_mask_ & (std::uint64_t{1} << q)) != 0;
  }

  // Per-lane results (valid mid-search as partial traversals).
  [[nodiscard]] Vertex root(std::size_t q) const noexcept {
    return roots_[q];
  }
  [[nodiscard]] const std::vector<std::int32_t>& levels(
      std::size_t q) const noexcept {
    return levels_[q];
  }
  /// Empty when record_parents is off.
  [[nodiscard]] const std::vector<Vertex>& parents(
      std::size_t q) const noexcept {
    return parents_[q];
  }
  [[nodiscard]] std::int64_t visited(std::size_t q) const noexcept {
    return visited_[q];
  }
  /// Deepest level at which lane q claimed a vertex.
  [[nodiscard]] std::int32_t depth(std::size_t q) const noexcept {
    return depth_[q];
  }

  // Whole-batch statistics.
  [[nodiscard]] double seconds() const noexcept { return seconds_; }
  [[nodiscard]] std::int64_t scanned_edges() const noexcept {
    return scanned_edges_;
  }
  [[nodiscard]] std::int32_t levels_executed() const noexcept {
    return level_ - 1;
  }

 private:
  void advance(std::int64_t claimed_this_level);

  const GraphStorage storage_;
  // By value: callers may pass a temporary, and the batch outlives the
  // construction expression (same hazard for every session-lifetime class).
  NumaTopology topology_;
  ThreadPool& pool_;
  MsBfsConfig config_;

  std::size_t width_ = 0;
  std::uint64_t live_mask_ = 0;  ///< bit q set while lane q participates
  std::vector<Vertex> roots_;

  std::vector<std::uint64_t> seen_;
  std::vector<std::uint64_t> frontier_;
  std::vector<std::uint64_t> next_;
  AtomicBitmap covered_;  ///< seen[v] covers every live lane

  std::vector<std::vector<std::int32_t>> levels_;  ///< [lane][vertex]
  std::vector<std::vector<Vertex>> parents_;       ///< [lane][vertex]
  std::vector<std::int64_t> visited_;              ///< per lane
  std::vector<std::int32_t> depth_;                ///< per lane

  std::int32_t level_ = 1;
  bool done_ = false;
  double seconds_ = 0.0;
  std::int64_t scanned_edges_ = 0;
};

}  // namespace sembfs::serve
