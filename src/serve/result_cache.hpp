// Bounded result cache for popular BFS roots.
//
// Production root popularity is Zipf-skewed: a few hot roots dominate the
// query mix, and their full traversals are immutable while the graph
// generation is. The cache stores finished Done BFS results keyed on
//
//   (root, options key, graph generation)
//
// where the options key is every QueryOptions field that changes the
// answer (today: max_levels — the k-hop cap truncates the level array) and
// the generation is the mutable-graph invalidation hook (the QueryEngine
// publish hook, docs/MUTATIONS.md): bump_generation() makes every cached
// entry unreachable in O(1) key-space terms and drops the storage
// eagerly. A query whose options don't match any cached key simply misses
// (options-mismatch bypass).
//
// Mutation protocol: a query computed against an old snapshot must never
// surface under a newer generation's key, so inserts carry the generation
// the caller captured at admission and are dropped on mismatch
// (generation-checked insert). For insert-only deltas the engine migrates
// instead of dropping: take_entries() drains the resident entries (the
// engine repairs each level/parent array through bfs/repair.hpp), then
// bump_generation() advances the key space, then the repaired entries are
// re-inserted under the new generation.
//
// Sizing is by BYTES, not entries — level/parent vectors dominate, so the
// capacity knob (EngineConfig::cache_bytes, --serve-cache-mb) maps
// directly to DRAM. Eviction is LRU; an entry larger than the whole
// capacity is never admitted. Hits hand back a shared_ptr to an immutable
// result, so serving a hit copies nothing under the lock and never
// touches the dispatcher, the slot pool, or the device — the engine
// finalizes the query right inside submit().
//
// Thread-safety: one mutex. lookup() is called from client threads inside
// submit(); insert() from the dispatcher at finalize. Both are O(1) plus
// hashing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/types.hpp"
#include "obs/metrics.hpp"
#include "serve/query.hpp"

namespace sembfs::serve {

/// Point-in-time cache counters (monotonic except bytes/entries).
struct ResultCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;   ///< bump_generation() calls
  std::uint64_t stale_inserts = 0;   ///< generation-checked inserts dropped
  std::size_t bytes = 0;             ///< resident payload bytes
  std::size_t entries = 0;
};

class ResultCache {
 public:
  /// `capacity_bytes` bounds the summed payload size (level + parent
  /// vectors plus a fixed per-entry overhead). Must be >= 1 — an engine
  /// with caching disabled simply holds no ResultCache.
  explicit ResultCache(std::size_t capacity_bytes);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached result for (root, options, current generation) or
  /// nullptr on miss. Counts the hit/miss and refreshes LRU order.
  [[nodiscard]] std::shared_ptr<const QueryResult> lookup(
      Vertex root, const QueryOptions& options);

  /// Caches a copy of `result` under (root, options, current generation),
  /// evicting LRU entries until it fits. Oversized results (bigger than
  /// the whole capacity) are dropped. Re-inserting an existing key
  /// replaces the entry.
  void insert(Vertex root, const QueryOptions& options,
              const QueryResult& result);

  /// Generation-checked insert: as above, but the entry is silently
  /// dropped (counted in stats().stale_inserts) unless
  /// `expected_generation` still equals the current generation. The
  /// engine captures the generation when it pins a query's snapshot, so a
  /// result computed against a pre-publication view can never be served
  /// under the post-publication key space.
  void insert(Vertex root, const QueryOptions& options,
              const QueryResult& result, std::uint64_t expected_generation);

  /// One drained cache entry (see take_entries()).
  struct TakenEntry {
    Vertex root = kNoVertex;
    std::int32_t max_levels = 0;  ///< the options key it was cached under
    std::shared_ptr<const QueryResult> result;
  };

  /// Removes and returns every resident entry, least-recent first (so a
  /// caller re-inserting in the returned order reproduces the original
  /// recency). Does NOT advance the generation — the migration path calls
  /// bump_generation() right after draining, repairs each entry off-lock,
  /// and re-inserts under the new generation.
  [[nodiscard]] std::vector<TakenEntry> take_entries();

  /// Mutable-graph invalidation hook: advances the generation (new
  /// lookups/inserts use the new one) and drops every entry of older
  /// generations eagerly.
  void bump_generation();

  [[nodiscard]] std::uint64_t generation() const;
  [[nodiscard]] ResultCacheStats stats() const;
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return capacity_bytes_;
  }

 private:
  struct Key {
    Vertex root;
    std::int32_t max_levels;
    std::uint64_t generation;

    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t h = static_cast<std::uint64_t>(k.root) * 0x9E3779B97F4A7C15ULL;
      h ^= (static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(k.max_levels)) +
            k.generation * 0xC2B2AE3D27D4EB4FULL);
      h ^= h >> 29;
      return static_cast<std::size_t>(h * 0x165667B19E3779F9ULL);
    }
  };
  struct Entry {
    Key key;
    std::shared_ptr<const QueryResult> result;
    std::size_t bytes = 0;
  };
  using LruList = std::list<Entry>;

  [[nodiscard]] static std::size_t entry_bytes(const QueryResult& result);
  [[nodiscard]] Key make_key_locked(Vertex root,
                                    const QueryOptions& options) const {
    return Key{root, options.max_levels, generation_};
  }
  void insert_impl(Vertex root, const QueryOptions& options,
                   const QueryResult& result, bool check_generation,
                   std::uint64_t expected_generation);
  void evict_until_fits_locked(std::size_t incoming_bytes);
  void erase_locked(LruList::iterator it);
  /// Drops every entry and zeroes the resident bytes/entries gauges (the
  /// shared tail of bump_generation() and take_entries()).
  void drop_all_locked();

  const std::size_t capacity_bytes_;

  mutable std::mutex mutex_;
  std::uint64_t generation_ = 0;
  LruList lru_;  ///< front = most recent
  std::unordered_map<Key, LruList::iterator, KeyHash> index_;
  ResultCacheStats stats_;

  // Observability handles (serve.cache.*), gated on obs::enabled().
  obs::Counter* obs_hits_;
  obs::Counter* obs_misses_;
  obs::Counter* obs_insertions_;
  obs::Counter* obs_evictions_;
  obs::Gauge* obs_bytes_;
};

}  // namespace sembfs::serve
