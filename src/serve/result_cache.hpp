// Bounded result cache for popular BFS roots.
//
// Production root popularity is Zipf-skewed: a few hot roots dominate the
// query mix, and their full traversals are immutable while the graph
// generation is. The cache stores finished Done BFS results keyed on
//
//   (root, options key, graph generation)
//
// where the options key is every QueryOptions field that changes the
// answer (today: max_levels — the k-hop cap truncates the level array) and
// the generation is the invalidation hook for the future mutable-graph
// layer: bump_generation() makes every cached entry unreachable in O(1)
// key-space terms and drops the storage eagerly. A query whose options
// don't match any cached key simply misses (options-mismatch bypass).
//
// Sizing is by BYTES, not entries — level/parent vectors dominate, so the
// capacity knob (EngineConfig::cache_bytes, --serve-cache-mb) maps
// directly to DRAM. Eviction is LRU; an entry larger than the whole
// capacity is never admitted. Hits hand back a shared_ptr to an immutable
// result, so serving a hit copies nothing under the lock and never
// touches the dispatcher, the slot pool, or the device — the engine
// finalizes the query right inside submit().
//
// Thread-safety: one mutex. lookup() is called from client threads inside
// submit(); insert() from the dispatcher at finalize. Both are O(1) plus
// hashing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "graph/types.hpp"
#include "obs/metrics.hpp"
#include "serve/query.hpp"

namespace sembfs::serve {

/// Point-in-time cache counters (monotonic except bytes/entries).
struct ResultCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;  ///< bump_generation() calls
  std::size_t bytes = 0;            ///< resident payload bytes
  std::size_t entries = 0;
};

class ResultCache {
 public:
  /// `capacity_bytes` bounds the summed payload size (level + parent
  /// vectors plus a fixed per-entry overhead). Must be >= 1 — an engine
  /// with caching disabled simply holds no ResultCache.
  explicit ResultCache(std::size_t capacity_bytes);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached result for (root, options, current generation) or
  /// nullptr on miss. Counts the hit/miss and refreshes LRU order.
  [[nodiscard]] std::shared_ptr<const QueryResult> lookup(
      Vertex root, const QueryOptions& options);

  /// Caches a copy of `result` under (root, options, current generation),
  /// evicting LRU entries until it fits. Oversized results (bigger than
  /// the whole capacity) are dropped. Re-inserting an existing key
  /// replaces the entry.
  void insert(Vertex root, const QueryOptions& options,
              const QueryResult& result);

  /// Invalidation hook for the future mutable-graph layer: advances the
  /// generation (new lookups/inserts use the new one) and drops every
  /// entry of older generations eagerly.
  void bump_generation();

  [[nodiscard]] std::uint64_t generation() const;
  [[nodiscard]] ResultCacheStats stats() const;
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return capacity_bytes_;
  }

 private:
  struct Key {
    Vertex root;
    std::int32_t max_levels;
    std::uint64_t generation;

    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t h = static_cast<std::uint64_t>(k.root) * 0x9E3779B97F4A7C15ULL;
      h ^= (static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(k.max_levels)) +
            k.generation * 0xC2B2AE3D27D4EB4FULL);
      h ^= h >> 29;
      return static_cast<std::size_t>(h * 0x165667B19E3779F9ULL);
    }
  };
  struct Entry {
    Key key;
    std::shared_ptr<const QueryResult> result;
    std::size_t bytes = 0;
  };
  using LruList = std::list<Entry>;

  [[nodiscard]] static std::size_t entry_bytes(const QueryResult& result);
  [[nodiscard]] Key make_key_locked(Vertex root,
                                    const QueryOptions& options) const {
    return Key{root, options.max_levels, generation_};
  }
  void evict_until_fits_locked(std::size_t incoming_bytes);
  void erase_locked(LruList::iterator it);

  const std::size_t capacity_bytes_;

  mutable std::mutex mutex_;
  std::uint64_t generation_ = 0;
  LruList lru_;  ///< front = most recent
  std::unordered_map<Key, LruList::iterator, KeyHash> index_;
  ResultCacheStats stats_;

  // Observability handles (serve.cache.*), gated on obs::enabled().
  obs::Counter* obs_hits_;
  obs::Counter* obs_misses_;
  obs::Counter* obs_insertions_;
  obs::Counter* obs_evictions_;
  obs::Gauge* obs_bytes_;
};

}  // namespace sembfs::serve
