// Seeded closed-loop load generator for the serving engine.
//
// Closed loop: each client thread holds at most ONE query in flight —
// submit, wait for the terminal state, record the end-to-end latency,
// repeat. Offered load therefore adapts to engine speed (the classic
// closed-loop property), and `clients` is the concurrency knob.
//
// Traffic shaping knobs layered on top of the closed loop:
//
//   * Root popularity — zipf_theta > 0 draws roots Zipf(theta)-skewed
//     toward LOW vertex ids (the degree-descending relabel the loaders
//     apply puts hubs there), modeling the hot-root skew the result
//     cache exists for. 0 keeps the uniform draw.
//   * Arrival pattern — Closed hammers continuously; Burst confines
//     submissions to a duty-cycle window of each period (synchronized
//     across clients: the whole fleet bursts together); Diurnal
//     modulates a base think time sinusoidally over the period.
//   * Rejection backoff — a Rejected submission is retried after seeded
//     exponential backoff with jitter, up to max_retries per query, and
//     RETRIES ARE COUNTED SEPARATELY from first-try submissions so
//     goodput is not inflated by resubmission traffic. (The first
//     version of this client resubmitted immediately — a hot-spin that
//     turned every rejection into a CPU-bound admission storm.)
//
// Everything is seeded (util/prng.hpp derive_seed per client), so a run
// is reproducible root-for-root; the same trace helper feeds the
// determinism replay test.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"
#include "serve/engine.hpp"
#include "util/prng.hpp"

namespace sembfs::serve {

/// When clients submit (see header comment).
enum class ArrivalPattern {
  Closed,   ///< no think time: submit as fast as answers return
  Burst,    ///< on/off duty cycle, synchronized across clients
  Diurnal,  ///< sinusoidal think time over `period_ms`
};

[[nodiscard]] const char* to_string(ArrivalPattern pattern) noexcept;

struct LoadGenConfig {
  std::size_t clients = 4;
  std::size_t queries_per_client = 16;
  std::uint64_t seed = 42;
  /// Zipf exponent for root popularity; 0 = uniform (the default and the
  /// historical behavior).
  double zipf_theta = 0.0;
  ArrivalPattern arrival = ArrivalPattern::Closed;
  /// Burst/Diurnal cycle length.
  double period_ms = 200.0;
  /// Burst: fraction of each period clients submit in (0 < duty <= 1).
  double burst_duty = 0.25;
  /// Diurnal: base think time, scaled by 1 + sin(2*pi*t/period).
  double think_ms = 1.0;
  /// Max resubmissions after Rejected per logical query (0 = give up
  /// immediately, the historical behavior minus the hot-spin).
  std::size_t max_retries = 0;
  /// Base backoff before the first retry; doubles per attempt, with
  /// seeded jitter in [0.5, 1.0) of the computed value.
  double retry_backoff_ms = 1.0;
  /// Tenants are assigned round-robin over clients (client c -> tenant
  /// c % tenants). 1 = everyone is tenant 0.
  std::size_t tenants = 1;
  /// The FIRST `high_priority_clients` clients submit Priority::High.
  std::size_t high_priority_clients = 0;
  /// Template applied to every submitted query (deadline, max_levels,
  /// batchable); priority/tenant fields are overwritten per client.
  QueryOptions options;
};

struct LoadGenReport {
  std::uint64_t issued = 0;   ///< logical queries (first submissions)
  std::uint64_t retries = 0;  ///< extra submissions after Rejected
  std::uint64_t done = 0;
  std::uint64_t cache_hits = 0;  ///< subset of done answered by the cache
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t deadline_expired = 0;
  /// Logical queries whose final outcome was Rejected (retry budget
  /// exhausted) — NOT the raw count of rejected submissions, which is
  /// rejected + retries that eventually succeeded.
  std::uint64_t rejected = 0;
  // High-priority lane accounting (clients [0, high_priority_clients)).
  std::uint64_t high_issued = 0;
  std::uint64_t high_done = 0;
  std::uint64_t high_deadline_expired = 0;
  double seconds = 0.0;  ///< wall time of the whole run
  /// Goodput: successfully answered (Done) queries per second of wall
  /// time. Failed / cancelled / expired queries consumed engine capacity
  /// but delivered no answer, so they are excluded — an earlier version
  /// divided `issued - rejected` by wall time, which inflated "throughput"
  /// exactly when the engine was failing queries.
  double qps = 0.0;
  /// Offered load actually admitted: (issued - rejected) per second of
  /// wall time — the quantity the old `qps` reported. Useful next to
  /// `qps` to see how much admitted work failed to complete.
  double offered_qps = 0.0;
  // End-to-end latency (submit -> terminal) of accepted queries, ms.
  // Retry backoff sleeps are excluded; the timer restarts per submission.
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

/// One Zipf(theta)-distributed root in [0, vertex_count), skewed toward
/// low ids; theta <= 0 degenerates to the uniform draw. Continuous
/// inverse-CDF approximation — O(1), no per-n table, deterministic for a
/// given rng state.
[[nodiscard]] Vertex zipf_root(Xoroshiro128& rng, Vertex vertex_count,
                               double theta);

/// Deterministic query trace: `count` roots drawn from [0, vertex_count)
/// with per-index seed derivation — element i is the same no matter how
/// the trace is consumed. theta > 0 skews the draw (Zipf), 0 keeps it
/// uniform.
[[nodiscard]] std::vector<Vertex> generate_trace(std::uint64_t seed,
                                                 std::size_t count,
                                                 Vertex vertex_count,
                                                 double zipf_theta = 0.0);

/// Runs the closed-loop load against a STARTED engine and blocks until
/// every client finishes its quota.
[[nodiscard]] LoadGenReport run_load(QueryEngine& engine,
                                     Vertex vertex_count,
                                     const LoadGenConfig& config);

}  // namespace sembfs::serve
