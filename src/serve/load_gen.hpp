// Seeded closed-loop load generator for the serving engine.
//
// Closed loop: each client thread holds at most ONE query in flight —
// submit, wait for the terminal state, record the end-to-end latency,
// repeat. Offered load therefore adapts to engine speed (the classic
// closed-loop property), and `clients` is the concurrency knob.
//
// Everything is seeded (util/prng.hpp derive_seed per client), so a run
// is reproducible root-for-root; the same trace helper feeds the
// determinism replay test.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"
#include "serve/engine.hpp"

namespace sembfs::serve {

struct LoadGenConfig {
  std::size_t clients = 4;
  std::size_t queries_per_client = 16;
  std::uint64_t seed = 42;
  /// Template applied to every submitted query (deadline, max_levels,
  /// batchable).
  QueryOptions options;
};

struct LoadGenReport {
  std::uint64_t issued = 0;
  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t rejected = 0;
  double seconds = 0.0;  ///< wall time of the whole run
  /// Goodput: successfully answered (Done) queries per second of wall
  /// time. Failed / cancelled / expired queries consumed engine capacity
  /// but delivered no answer, so they are excluded — an earlier version
  /// divided `issued - rejected` by wall time, which inflated "throughput"
  /// exactly when the engine was failing queries.
  double qps = 0.0;
  /// Offered load actually admitted: (issued - rejected) per second of
  /// wall time — the quantity the old `qps` reported. Useful next to
  /// `qps` to see how much admitted work failed to complete.
  double offered_qps = 0.0;
  // End-to-end latency (submit -> terminal) of accepted queries, ms.
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

/// Deterministic query trace: `count` roots drawn uniformly from
/// [0, vertex_count) with per-index seed derivation — element i is the
/// same no matter how the trace is consumed.
[[nodiscard]] std::vector<Vertex> generate_trace(std::uint64_t seed,
                                                 std::size_t count,
                                                 Vertex vertex_count);

/// Runs the closed-loop load against a STARTED engine and blocks until
/// every client finishes its quota.
[[nodiscard]] LoadGenReport run_load(QueryEngine& engine,
                                     Vertex vertex_count,
                                     const LoadGenConfig& config);

}  // namespace sembfs::serve
