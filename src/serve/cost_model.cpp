#include "serve/cost_model.hpp"

namespace sembfs::serve {

double predicted_cost_ms(std::int64_t root_degree,
                         const CongestionSignal& congestion,
                         const CostModelParams& params) {
  const double degree =
      root_degree > 0 ? static_cast<double>(root_degree) : 0.0;
  const double work_ms = params.base_ms + degree * params.ms_per_edge;
  const double congestion_scale =
      1.0 + congestion.queue_depth * params.queue_depth_factor +
      congestion.avg_wait_us * 1e-3 * params.queue_wait_factor_per_ms;
  return work_ms * congestion_scale;
}

CongestionProbe::CongestionProbe()
    : depth_gauge_(&obs::metrics().gauge("nvm.queue_depth")),
      wait_histogram_(&obs::metrics().histogram("nvm.queue_wait_us")) {}

CongestionSignal CongestionProbe::sample() {
  CongestionSignal signal;
  if (!obs::enabled()) return signal;
  signal.queue_depth = static_cast<double>(depth_gauge_->value());
  const obs::HistogramSnapshot snap = wait_histogram_->snapshot();
  if (snap.count > last_count_) {
    signal.avg_wait_us = static_cast<double>(snap.sum - last_sum_) /
                         static_cast<double>(snap.count - last_count_);
  }
  last_count_ = snap.count;
  last_sum_ = snap.sum;
  return signal;
}

}  // namespace sembfs::serve
