#include "serve/slot_pool.hpp"

#include "util/contracts.hpp"

namespace sembfs::serve {

StatusSlotPool::StatusSlotPool(Vertex vertex_count, std::size_t capacity) {
  SEMBFS_EXPECTS(capacity >= 1);
  slots_.reserve(capacity);
  for (std::size_t i = 0; i < capacity; ++i)
    slots_.push_back(Slot{std::make_unique<BfsStatus>(vertex_count), false});
}

std::uint64_t StatusSlotPool::byte_size() const noexcept {
  std::uint64_t total = 0;
  for (const Slot& slot : slots_) total += slot.status->byte_size();
  return total;
}

BfsStatus* StatusSlotPool::try_acquire() {
  for (Slot& slot : slots_) {
    if (!slot.busy) {
      slot.busy = true;
      ++in_use_;
      return slot.status.get();
    }
  }
  return nullptr;
}

void StatusSlotPool::release(BfsStatus* status) {
  for (Slot& slot : slots_) {
    if (slot.status.get() == status) {
      SEMBFS_EXPECTS(slot.busy);
      slot.busy = false;
      --in_use_;
      return;
    }
  }
  SEMBFS_EXPECTS(false && "released a status that is not pool-owned");
}

}  // namespace sembfs::serve
