// Fixed pool of reusable BfsStatus slots for the serving engine.
//
// A BfsStatus for a SCALE-s graph is the dominant per-search allocation
// (parent + level arrays, three bitmaps — ~13 bytes/vertex), so allocating
// one per query would put a multi-megabyte allocation and page-fault storm
// on the serving hot path. The pool sizes `capacity` slots once; each
// single-query session borrows a slot for its lifetime and returns it on
// finalize, relying on the status-slot reuse contract in bfs_status.hpp
// (reset() restores post-construction state; one search at a time per
// slot; copy out what you need before release).
//
// The pool's capacity is the engine's single-query concurrency limit:
// try_acquire() returning nullptr is the "all slots busy" signal the
// dispatcher uses to stop admitting session queries for the tick.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "bfs/bfs_status.hpp"

namespace sembfs::serve {

class StatusSlotPool {
 public:
  /// Allocates `capacity` BfsStatus slots for a `vertex_count` graph.
  StatusSlotPool(Vertex vertex_count, std::size_t capacity);

  StatusSlotPool(const StatusSlotPool&) = delete;
  StatusSlotPool& operator=(const StatusSlotPool&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept {
    return slots_.size();
  }
  [[nodiscard]] std::size_t in_use() const noexcept { return in_use_; }
  [[nodiscard]] std::size_t free() const noexcept {
    return slots_.size() - in_use_;
  }
  /// DRAM held by all slots (capacity planning; see docs/SERVING.md).
  [[nodiscard]] std::uint64_t byte_size() const noexcept;

  /// Borrows a free slot, or nullptr when every slot is busy. NOT
  /// thread-safe: the engine's dispatcher is the only caller.
  [[nodiscard]] BfsStatus* try_acquire();
  /// Returns a borrowed slot. `status` must come from try_acquire().
  void release(BfsStatus* status);

 private:
  struct Slot {
    std::unique_ptr<BfsStatus> status;
    bool busy = false;
  };
  std::vector<Slot> slots_;
  std::size_t in_use_ = 0;
};

}  // namespace sembfs::serve
