#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <span>
#include <utility>

#include "bfs/repair.hpp"
#include "bfs/session.hpp"
#include "engine/components_program.hpp"
#include "engine/program_session.hpp"
#include "nvm/fault_plan.hpp"
#include "util/contracts.hpp"

namespace sembfs::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t).count();
}

QueryState state_for(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::Cancelled:
      return QueryState::Cancelled;
    case StopReason::Deadline:
      return QueryState::DeadlineExpired;
    case StopReason::None:
      break;
  }
  return QueryState::Done;
}

}  // namespace

/// One in-flight analytics query: its vertex program (which owns the
/// per-vertex state — labels, ranks, cursor) plus the engine session
/// driving it one superstep per tick (dispatcher-local).
struct QueryEngine::ActiveAnalytics {
  QueryRef query;
  /// Snapshot pinned at admission (null on sealed-storage engines): the
  /// whole program runs on this one merged view.
  std::shared_ptr<const GraphSnapshot> pinned;
  std::unique_ptr<engine::VertexProgram> program;
  std::unique_ptr<engine::ProgramSession> session;
  Clock::time_point started{};
  double queue_wait_ms = 0.0;
};

/// One in-flight single-query session (dispatcher-local).
struct QueryEngine::ActiveSession {
  QueryRef query;
  std::shared_ptr<const GraphSnapshot> pinned;  ///< view at admission
  std::uint64_t cache_generation = 0;  ///< for the generation-checked insert
  BfsStatus* slot = nullptr;  ///< borrowed from the pool
  std::unique_ptr<BfsSession> session;
  Clock::time_point started{};
  double queue_wait_ms = 0.0;
};

/// The in-flight MS-BFS batch plus its riders (dispatcher-local). Several
/// riders can share a lane (root dedup); a lane is deactivated only once
/// every rider on it is terminal.
struct QueryEngine::ActiveBatch {
  struct Rider {
    QueryRef query;
    std::size_t lane = 0;
    double queue_wait_ms = 0.0;
    bool finished = false;
  };
  std::unique_ptr<MsBfsBatch> batch;
  std::shared_ptr<const GraphSnapshot> pinned;  ///< view at formation
  std::uint64_t cache_generation = 0;
  std::vector<Rider> riders;
  std::vector<std::size_t> lane_riders;  ///< live riders per lane
  Clock::time_point started{};
};

QueryEngine::QueryEngine(GraphStorage storage, const NumaTopology& topology,
                         ThreadPool& pool, EngineConfig config)
    : storage_(storage),
      vertex_count_(storage.vertex_count()),
      topology_(topology),
      pool_(pool),
      config_(std::move(config)),
      slots_(storage_.vertex_count(),
             config_.session_slots >= 1 ? config_.session_slots : 1) {
  SEMBFS_EXPECTS(config_.queue_capacity >= 1);
  SEMBFS_EXPECTS(config_.high_reserve < config_.queue_capacity);
  SEMBFS_EXPECTS(config_.max_batch >= 1 &&
                 config_.max_batch <= MsBfsBatch::kMaxBatch);
  if (config_.cache_bytes > 0)
    cache_ = std::make_unique<ResultCache>(config_.cache_bytes);
  auto& reg = obs::metrics();
  obs_submitted_ = &reg.counter("serve.submitted");
  obs_rejected_ = &reg.counter("serve.rejected");
  obs_quota_rejected_ = &reg.counter("serve.quota_rejected");
  obs_done_ = &reg.counter("serve.done");
  obs_failed_ = &reg.counter("serve.failed");
  obs_cancelled_ = &reg.counter("serve.cancelled");
  obs_deadline_expired_ = &reg.counter("serve.deadline_expired");
  obs_high_deadline_expired_ = &reg.counter("serve.high.deadline_expired");
  obs_session_queries_ = &reg.counter("serve.session_queries");
  obs_batched_queries_ = &reg.counter("serve.batched_queries");
  obs_batches_ = &reg.counter("serve.batches");
  obs_analytics_queries_ = &reg.counter("serve.analytics_queries");
  obs_queue_depth_ = &reg.gauge("serve.queue_depth");
  obs_in_flight_ = &reg.gauge("serve.in_flight");
  obs_queue_wait_us_ = &reg.histogram("serve.queue_wait_us");
  obs_exec_us_ = &reg.histogram("serve.exec_us");
  obs_batch_lanes_ = &reg.histogram("serve.batch_lanes");
  if (config_.autostart) start();
}

QueryEngine::QueryEngine(MutableGraph& graph, const NumaTopology& topology,
                         ThreadPool& pool, EngineConfig config)
    // The delegated constructor only needs vertex_count() from this
    // temporary view; the snapshot is re-pinned durably right below.
    // Autostart is suppressed so the dispatcher cannot observe the
    // half-initialized mutable-graph members — it starts at the end of
    // this body, once the snapshot is pinned and the hook registered.
    : QueryEngine(graph.snapshot()->storage(), topology, pool, [&] {
        EngineConfig deferred = config;
        deferred.autostart = false;
        return deferred;
      }()) {
  mutable_graph_ = &graph;
  latest_ = graph.snapshot();
  storage_ = latest_->storage();  // now borrows from the pinned snapshot
  graph.set_publish_hook(
      [this](const std::shared_ptr<const GraphSnapshot>& snapshot) {
        on_publish(snapshot);
      });
  if (config.autostart) start();
}

QueryEngine::~QueryEngine() {
  // Unregister before teardown: set_publish_hook serializes on the
  // graph's writer lock, so no hook can be mid-flight once it returns.
  if (mutable_graph_ != nullptr) mutable_graph_->set_publish_hook({});
  shutdown();
}

QueryEngine::TenantState& QueryEngine::tenant_state_locked(
    std::uint32_t tenant) {
  const auto [it, inserted] = tenants_.try_emplace(tenant);
  if (inserted) {
    // Lazy resolution: tenant ids are open-ended, so serve.tenant.<id>.*
    // counters are registered on a tenant's first submission.
    auto& reg = obs::metrics();
    char name[64];
    std::snprintf(name, sizeof(name), "serve.tenant.%u.submitted", tenant);
    it->second.submitted = &reg.counter(name);
    std::snprintf(name, sizeof(name), "serve.tenant.%u.rejected", tenant);
    it->second.rejected = &reg.counter(name);
    std::snprintf(name, sizeof(name), "serve.tenant.%u.completed", tenant);
    it->second.completed = &reg.counter(name);
  }
  return it->second;
}

QueryRef QueryEngine::submit(Vertex root, QueryOptions options) {
  // Checked against the cached count, not storage_: for mutable-graph
  // engines storage_ borrows from the construction-time snapshot, whose
  // base generation may have been compacted away by now. The vertex set
  // is invariant across publications.
  SEMBFS_EXPECTS(root >= 0 && root < vertex_count_);
  return submit_impl(root, options);
}

QueryRef QueryEngine::submit_analytics(QueryKind kind, QueryOptions options) {
  SEMBFS_EXPECTS(kind != QueryKind::Bfs);
  options.kind = kind;
  options.batchable = false;  // analytics never ride the MS-BFS kernel
  return submit_impl(kNoVertex, options);
}

QueryRef QueryEngine::submit_impl(Vertex root, QueryOptions options) {
  const std::lock_guard<std::mutex> lock{mutex_};
  auto query = std::make_shared<Query>(next_id_++, root, options);
  query->submitted_at_ = Clock::now();
  ++stats_.submitted;
  TenantState& tenant = tenant_state_locked(options.tenant);
  if (obs::enabled()) {
    obs_submitted_->add(1);
    tenant.submitted->add(1);
  }

  // Hot-root cache: a hit is finalized right here — no queue slot, no
  // dispatcher wakeup, no device traffic. Only full BFS answers are
  // cached; the key includes every option that changes the answer, so an
  // options mismatch is just a miss.
  if (!stop_ && cache_ != nullptr && options.kind == QueryKind::Bfs) {
    if (auto hit = cache_->lookup(root, options)) {
      ++stats_.done;
      ++stats_.cache_hits;
      if (obs::enabled()) {
        obs_done_->add(1);
        tenant.completed->add(1);
      }
      QueryResult result = *hit;  // the client owns its copy
      result.state = QueryState::Done;
      result.cache_hit = true;
      result.queue_wait_ms = 0.0;
      result.exec_ms = 0.0;
      query->finalize(std::move(result));
      return query;
    }
  }

  const char* reject = nullptr;
  bool quota = false;
  if (stop_) {
    reject = "engine is shut down";
  } else if (config_.tenant_quota > 0 &&
             tenant.in_flight >= config_.tenant_quota) {
    reject = "tenant quota exceeded";
    quota = true;
  } else {
    // The last high_reserve queue slots belong to the high lane: normal
    // traffic saturating the queue cannot lock the high lane out of
    // admission.
    const std::size_t limit = options.priority == Priority::High
                                  ? config_.queue_capacity
                                  : config_.queue_capacity -
                                        config_.high_reserve;
    if (queue_.size() >= limit) reject = "admission queue full";
  }
  if (reject != nullptr) {
    ++stats_.rejected;
    if (quota) ++stats_.quota_rejected;
    if (obs::enabled()) {
      obs_rejected_->add(1);
      if (quota) obs_quota_rejected_->add(1);
      tenant.rejected->add(1);
    }
    QueryResult result;
    result.root = root;
    result.kind = options.kind;
    result.state = QueryState::Rejected;
    result.error = reject;
    query->finalize(std::move(result));
    return query;
  }

  const double deadline = options.deadline_ms > 0.0
                              ? options.deadline_ms
                              : config_.default_deadline_ms;
  if (deadline > 0.0) query->token_.set_deadline_after_ms(deadline);
  queue_.push_back(query);
  ++in_flight_;
  ++tenant.in_flight;
  if (obs::enabled()) {
    obs_queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
    obs_in_flight_->set(static_cast<std::int64_t>(in_flight_));
  }
  work_cv_.notify_one();
  return query;
}

void QueryEngine::start() {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (started_) return;
  started_ = true;
  dispatcher_ = std::thread{[this] { dispatcher_loop(); }};
}

void QueryEngine::drain() {
  std::unique_lock<std::mutex> lock{mutex_};
  SEMBFS_EXPECTS(started_ || in_flight_ == 0);
  drain_cv_.wait(lock, [&] { return in_flight_ == 0; });
}

void QueryEngine::shutdown() {
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    stop_ = true;
    if (!started_) {
      // Dispatcher never ran: nothing will serve the queue — fail it here.
      for (const QueryRef& query : queue_) {
        QueryResult result;
        result.root = query->root();
        result.state = QueryState::Cancelled;
        result.error = "engine shut down before start()";
        TenantState& tenant = tenant_state_locked(query->options().tenant);
        SEMBFS_ASSERT(tenant.in_flight > 0);
        --tenant.in_flight;
        query->finalize(std::move(result));
        ++stats_.cancelled;
        --in_flight_;
      }
      queue_.clear();
    }
  }
  work_cv_.notify_all();
  drain_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void QueryEngine::invalidate_cache() {
  if (cache_ != nullptr) cache_->bump_generation();
}

EngineStats QueryEngine::stats() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return stats_;
}

ResultCacheStats QueryEngine::cache_stats() const {
  return cache_ != nullptr ? cache_->stats() : ResultCacheStats{};
}

std::size_t QueryEngine::queue_depth() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return queue_.size();
}

std::uint64_t QueryEngine::in_flight() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return in_flight_;
}

std::int64_t QueryEngine::cheap_degree(const GraphStorage& storage, Vertex v) {
  // Any backward graph answers degree from DRAM in one lookup, and a
  // pure-DRAM forward stack answers it without the device. Otherwise
  // (external/tiered forward only) report 0 and let the cost model fall
  // back to its base term — a planner that blocks on chunk I/O to plan
  // around chunk I/O would defeat itself. GraphStorage::degree() already
  // adds the delta adjustment, so mutable-graph planning sees merged-view
  // degrees at DRAM cost.
  if (storage.backward_dram != nullptr || storage.backward_hybrid != nullptr)
    return storage.degree(v);
  if (storage.forward_external == nullptr && storage.forward_tiered == nullptr)
    return storage.degree(v);
  return 0;
}

GraphStorage QueryEngine::resolve_storage(
    std::shared_ptr<const GraphSnapshot>& pin,
    std::uint64_t& cache_generation) const {
  const std::lock_guard<std::mutex> lock{mutex_};
  cache_generation = cache_ != nullptr ? cache_->generation() : 0;
  if (mutable_graph_ == nullptr) return storage_;
  pin = latest_;
  return pin->storage();
}

void QueryEngine::on_publish(
    const std::shared_ptr<const GraphSnapshot>& snapshot) {
  std::vector<ResultCache::TakenEntry> taken;
  const DeltaBuffer* delta = nullptr;
  {
    // One critical section advances the snapshot AND the cache
    // generation: resolve_storage() captures its (pin, generation) pair
    // under the same mutex, so no admission can see the new snapshot with
    // the old generation or vice versa.
    const std::lock_guard<std::mutex> lock{mutex_};
    latest_ = snapshot;
    ++stats_.snapshots_published;
    if (cache_ != nullptr) {
      delta = snapshot->delta();
      if (delta == nullptr) {
        // Compaction (or a no-op publish): the logical graph is
        // unchanged, so every cached answer is still exact — keep them.
      } else if (delta->has_deletes()) {
        // Deletions can lengthen distances; repair is out of scope, so
        // the whole cache is invalidated.
        stats_.cache_entries_dropped += cache_->stats().entries;
        cache_->bump_generation();
        delta = nullptr;
      } else {
        // Insert-only: drain now (under the lock, so no entry straddles
        // the generation line), repair off-lock below.
        taken = cache_->take_entries();
        cache_->bump_generation();
      }
    }
  }
  if (delta == nullptr || taken.empty()) return;

  // Migrate the drained full traversals: insertions only shorten
  // unit-weight distances, so each cached level/parent array is patched
  // by the incremental repair kernel against the (unchanged) base
  // adjacency and re-inserted under the new generation. Truncated k-hop
  // entries are not complete traversals and are dropped instead. The
  // graph's writer lock serializes publish hooks, so the generation
  // cannot move again while this loop re-inserts.
  const BackwardGraph& backward = snapshot->base().backward();
  std::uint64_t migrated = 0;
  std::uint64_t dropped = 0;
  for (ResultCache::TakenEntry& entry : taken) {
    bool kept = false;
    if (entry.max_levels <= 0) {
      QueryResult patched = *entry.result;
      const RepairOutcome outcome = repair_bfs_levels(
          backward, *delta, entry.root, patched.level, patched.parent);
      if (outcome.repaired) {
        patched.visited += outcome.newly_reached;
        std::int32_t depth = 0;
        for (const std::int32_t l : patched.level) depth = std::max(depth, l);
        patched.depth = depth;
        QueryOptions options;
        options.max_levels = entry.max_levels;
        cache_->insert(entry.root, options, patched);
        kept = true;
      }
    }
    kept ? ++migrated : ++dropped;
  }
  const std::lock_guard<std::mutex> lock{mutex_};
  stats_.cache_entries_migrated += migrated;
  stats_.cache_entries_dropped += dropped;
}

void QueryEngine::finalize_query(const QueryRef& query, QueryResult result,
                                 std::uint64_t cache_generation) {
  const QueryState state = result.state;
  if (obs::enabled()) {
    obs_queue_wait_us_->record(
        static_cast<std::uint64_t>(result.queue_wait_ms * 1e3));
    obs_exec_us_->record(static_cast<std::uint64_t>(result.exec_ms * 1e3));
  }
  // Feed the hot-root cache: only complete, non-degraded-to-empty Done
  // BFS answers (a deadline/cancel partial must never be served as the
  // full traversal). Degraded results are still exact trees, so they are
  // cacheable.
  if (cache_ != nullptr && state == QueryState::Done &&
      query->options().kind == QueryKind::Bfs && !result.level.empty())
    cache_->insert(query->root(), query->options(), result, cache_generation);
  query->finalize(std::move(result));
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    SEMBFS_ASSERT(in_flight_ > 0);
    --in_flight_;
    TenantState& tenant = tenant_state_locked(query->options().tenant);
    SEMBFS_ASSERT(tenant.in_flight > 0);
    --tenant.in_flight;
    if (obs::enabled()) tenant.completed->add(1);
    switch (state) {
      case QueryState::Done:
        ++stats_.done;
        if (obs::enabled()) obs_done_->add(1);
        break;
      case QueryState::Failed:
        ++stats_.failed;
        if (obs::enabled()) obs_failed_->add(1);
        break;
      case QueryState::Cancelled:
        ++stats_.cancelled;
        if (obs::enabled()) obs_cancelled_->add(1);
        break;
      case QueryState::DeadlineExpired:
        ++stats_.deadline_expired;
        if (query->options().priority == Priority::High) {
          ++stats_.high_deadline_expired;
          if (obs::enabled()) obs_high_deadline_expired_->add(1);
        }
        if (obs::enabled()) obs_deadline_expired_->add(1);
        break;
      default:
        SEMBFS_ASSERT(false && "finalized to a non-terminal state");
        break;
    }
    if (obs::enabled())
      obs_in_flight_->set(static_cast<std::int64_t>(in_flight_));
  }
  drain_cv_.notify_all();
}

void QueryEngine::cull_queued(std::deque<QueryRef>& queued) {
  std::size_t kept = 0;
  for (QueryRef& query : queued) {
    const StopReason stop = query->token_.should_stop();
    if (stop == StopReason::None) {
      queued[kept++] = std::move(query);
      continue;
    }
    QueryResult result;
    result.root = query->root();
    result.kind = query->options().kind;
    result.state = state_for(stop);
    result.queue_wait_ms = ms_since(query->submitted_at_);
    finalize_query(query, std::move(result), 0);  // never Done: no insert
  }
  queued.resize(kept);
}

void QueryEngine::admit_analytics(std::deque<QueryRef>& queued,
                                  std::vector<ActiveAnalytics>& analytics) {
  while (!queued.empty() && analytics.size() < config_.analytics_slots) {
    QueryRef query = std::move(queued.front());
    queued.pop_front();

    ActiveAnalytics active;
    active.query = std::move(query);
    active.started = Clock::now();
    active.queue_wait_ms = ms_since(active.query->submitted_at_);
    std::uint64_t cache_generation = 0;  // analytics are never cached
    const GraphStorage storage =
        resolve_storage(active.pinned, cache_generation);
    switch (active.query->options().kind) {
      case QueryKind::Components:
        active.program = std::make_unique<engine::ComponentsProgram>();
        break;
      case QueryKind::PageRank:
        active.program =
            std::make_unique<engine::PageRankProgram>(config_.pagerank);
        break;
      case QueryKind::Triangles:
        active.program =
            std::make_unique<engine::TriangleProgram>(config_.triangles);
        break;
      case QueryKind::Bfs:
        SEMBFS_ASSERT(false && "Bfs query routed to the analytics path");
        break;
    }
    BfsConfig bfs = config_.bfs;
    bfs.cancel = &active.query->token_;
    active.session = std::make_unique<engine::ProgramSession>(
        *active.program, storage, topology_, pool_, bfs);
    active.query->mark_running();
    analytics.push_back(std::move(active));
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      ++stats_.analytics_queries;
    }
    if (obs::enabled()) obs_analytics_queries_->add(1);
  }
}

void QueryEngine::step_analytics(std::vector<ActiveAnalytics>& analytics) {
  for (std::size_t i = 0; i < analytics.size();) {
    ActiveAnalytics& active = analytics[i];
    bool more = false;
    bool io_failed = false;
    std::string error;
    try {
      more = active.session->step();
    } catch (const NvmIoError& e) {
      // Same per-query containment as BFS sessions: an analytics query
      // whose program cannot degrade past its I/O budget fails alone.
      io_failed = true;
      error = e.what();
    }
    const std::int32_t executed = active.session->supersteps_executed();
    const std::int32_t max_levels = active.query->options().max_levels;
    const bool hit_cap = !io_failed && more && max_levels > 0 &&
                         executed >= max_levels;
    if (!io_failed && more && !hit_cap) {
      ++i;  // next superstep on a later tick
      continue;
    }

    const QueryKind kind = active.query->options().kind;
    QueryResult result;
    result.kind = kind;
    result.queue_wait_ms = active.queue_wait_ms;
    result.exec_ms = ms_since(active.started);
    result.supersteps = executed;
    if (io_failed) {
      result.state = QueryState::Failed;
      result.error = std::move(error);
      result.io_failures = 1;
    } else {
      result.state =
          hit_cap ? QueryState::Done : state_for(active.session->stop_reason());
      result.io_failures = active.session->io_failures();
      result.degraded_levels = active.session->degraded_supersteps();
      result.degraded = result.degraded_levels > 0;
      switch (kind) {
        case QueryKind::Components: {
          auto& program =
              static_cast<engine::ComponentsProgram&>(*active.program);
          result.labels = program.labels();
          // Labels are component-minimum vertex ids, so distinct label
          // values can be counted with one flag pass.
          std::vector<bool> seen(result.labels.size(), false);
          for (const Vertex l : result.labels) {
            const auto idx = static_cast<std::size_t>(l);
            if (!seen[idx]) {
              seen[idx] = true;
              ++result.component_count;
            }
          }
          break;
        }
        case QueryKind::PageRank: {
          auto& program =
              static_cast<engine::PageRankProgram&>(*active.program);
          result.ranks = program.ranks();
          break;
        }
        case QueryKind::Triangles: {
          auto& program =
              static_cast<engine::TriangleProgram&>(*active.program);
          result.triangles = program.triangles();
          break;
        }
        case QueryKind::Bfs:
          break;
      }
    }
    finalize_query(active.query, std::move(result), 0);  // never cached
    analytics.erase(analytics.begin() + static_cast<std::ptrdiff_t>(i));
  }
}

void QueryEngine::admit_sessions(std::deque<QueryRef>& queued,
                                 std::vector<ActiveSession>& sessions) {
  while (!queued.empty()) {
    BfsStatus* slot = slots_.try_acquire();
    if (slot == nullptr) return;  // all slots busy: backpressure
    QueryRef query = std::move(queued.front());
    queued.pop_front();

    ActiveSession active;
    active.query = std::move(query);
    active.slot = slot;
    active.started = Clock::now();
    active.queue_wait_ms = ms_since(active.query->submitted_at_);
    const GraphStorage storage =
        resolve_storage(active.pinned, active.cache_generation);
    BfsConfig bfs = config_.bfs;
    bfs.cancel = &active.query->token_;
    active.session = std::make_unique<BfsSession>(
        storage, topology_, pool_, *slot, active.query->root(), bfs);
    active.query->mark_running();
    sessions.push_back(std::move(active));
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      ++stats_.session_queries;
    }
    if (obs::enabled()) obs_session_queries_->add(1);
  }
}

std::unique_ptr<QueryEngine::ActiveBatch> QueryEngine::make_batch(
    std::deque<QueryRef>& queued) {
  // One pin for the whole batch: the planner's degree probes and the
  // MS-BFS traversal read the same merged view.
  std::shared_ptr<const GraphSnapshot> pinned;
  std::uint64_t cache_generation = 0;
  const GraphStorage storage = resolve_storage(pinned, cache_generation);
  BatchPlan plan;
  if (config_.planner == PlannerMode::Fifo) {
    plan = plan_batch(queued, config_.max_batch, config_.max_batch_queries);
  } else {
    // Capture everything the planner may see at one instant — the plan is
    // then a pure function of this input (replayable, PlannerLog-traced).
    PlannerInput input;
    input.max_lanes = config_.max_batch;
    input.max_queries = config_.max_batch_queries;
    input.cost = config_.cost;
    input.congestion = probe_.sample();
    input.entries.reserve(queued.size());
    for (const QueryRef& query : queued) {
      PlannerInput::Entry entry;
      entry.root = query->root();
      entry.degree = cheap_degree(storage, entry.root);
      entry.slack_ms = query->token_.deadline_remaining_ms();
      entry.priority = query->options().priority;
      input.entries.push_back(entry);
    }
    const PlanDecision decision = plan_cost_batch(input);
    plan.roots = decision.roots;
    plan.lane_of = decision.lane_of;
    plan.queries.reserve(decision.picked.size());
    std::vector<bool> taken(queued.size(), false);
    for (const std::size_t idx : decision.picked) {
      plan.queries.push_back(queued[idx]);
      taken[idx] = true;
    }
    if (config_.planner_log != nullptr)
      config_.planner_log->record(PlannerSpan{std::move(input), decision});
    // Single compaction pass over the survivors (skipped roots keep their
    // relative admission order for the next batch).
    std::size_t kept = 0;
    for (std::size_t i = 0; i < queued.size(); ++i)
      if (!taken[i]) queued[kept++] = std::move(queued[i]);
    queued.resize(kept);
  }
  if (plan.empty()) return nullptr;

  auto active = std::make_unique<ActiveBatch>();
  active->batch = std::make_unique<MsBfsBatch>(
      storage, topology_, pool_, std::span<const Vertex>{plan.roots},
      config_.msbfs);
  active->pinned = std::move(pinned);
  active->cache_generation = cache_generation;
  active->started = Clock::now();
  active->lane_riders.assign(plan.width(), 0);
  active->riders.reserve(plan.queries.size());
  for (std::size_t i = 0; i < plan.queries.size(); ++i) {
    ActiveBatch::Rider rider;
    rider.query = plan.queries[i];
    rider.lane = plan.lane_of[i];
    rider.queue_wait_ms = ms_since(rider.query->submitted_at_);
    rider.query->mark_running();
    ++active->lane_riders[rider.lane];
    active->riders.push_back(std::move(rider));
  }
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    ++stats_.batches;
    stats_.batched_queries += active->riders.size();
  }
  if (obs::enabled()) {
    obs_batches_->add(1);
    obs_batched_queries_->add(active->riders.size());
    obs_batch_lanes_->record(plan.width());
  }
  return active;
}

void QueryEngine::step_sessions(std::vector<ActiveSession>& sessions) {
  for (std::size_t i = 0; i < sessions.size();) {
    ActiveSession& active = sessions[i];
    bool more = false;
    bool io_failed = false;
    std::string error;
    try {
      more = active.session->step();
    } catch (const NvmIoError& e) {
      // Per-query fault containment: this query fails alone; the graph,
      // pool and every neighbor query keep running.
      io_failed = true;
      error = e.what();
    }
    const std::int32_t executed = active.session->next_level() - 1;
    const std::int32_t max_levels = active.query->options().max_levels;
    const bool hit_cap = !io_failed && more && max_levels > 0 &&
                         executed >= max_levels;
    if (!io_failed && more && !hit_cap) {
      ++i;  // still running: next level on a later tick
      continue;
    }

    QueryResult result;
    result.root = active.query->root();
    result.queue_wait_ms = active.queue_wait_ms;
    result.exec_ms = ms_since(active.started);
    if (io_failed) {
      // No snapshot: the step unwound mid-level, so only the error and the
      // fatal failure count are reported.
      result.state = QueryState::Failed;
      result.error = std::move(error);
      result.io_failures = 1;
    } else {
      BfsResult bfs = active.session->snapshot_result();
      result.state =
          hit_cap ? QueryState::Done : state_for(active.session->stop_reason());
      result.depth = bfs.depth;
      result.visited = bfs.visited;
      result.degraded = bfs.degraded;
      result.degraded_levels = bfs.degraded_levels;
      result.io_failures = bfs.io_failures;
      result.level = std::move(bfs.level);
      result.parent = std::move(bfs.parent);
    }
    slots_.release(active.slot);
    finalize_query(active.query, std::move(result), active.cache_generation);
    sessions.erase(sessions.begin() + static_cast<std::ptrdiff_t>(i));
  }
}

bool QueryEngine::tick_batch(ActiveBatch& active) {
  MsBfsBatch& batch = *active.batch;

  // Finalize a rider from its lane's (possibly partial) traversal.
  const auto finish_rider = [&](ActiveBatch::Rider& rider, QueryState state) {
    const std::size_t q = rider.lane;
    QueryResult result;
    result.root = batch.root(q);
    result.state = state;
    result.batched = true;
    result.depth = batch.depth(q);
    result.visited = batch.visited(q);
    result.queue_wait_ms = rider.queue_wait_ms;
    result.exec_ms = ms_since(active.started);
    result.level = batch.levels(q);  // copy: lanes may have several riders
    if (config_.msbfs.record_parents) result.parent = batch.parents(q);
    rider.finished = true;
    SEMBFS_ASSERT(active.lane_riders[q] > 0);
    if (--active.lane_riders[q] == 0 && batch.lane_live(q))
      batch.deactivate(q);
    finalize_query(rider.query, std::move(result), active.cache_generation);
  };

  // Cull riders whose token fired or whose level cap is met (level
  // granularity, same as sessions).
  for (ActiveBatch::Rider& rider : active.riders) {
    if (rider.finished) continue;
    const StopReason stop = rider.query->token_.should_stop();
    if (stop != StopReason::None) {
      finish_rider(rider, state_for(stop));
      continue;
    }
    const std::int32_t max_levels = rider.query->options().max_levels;
    if (max_levels > 0 && batch.levels_executed() >= max_levels)
      finish_rider(rider, QueryState::Done);
  }

  bool more = false;
  if (!batch.done()) {
    try {
      more = batch.step();
    } catch (const NvmIoError& e) {
      // Batched queries share one traversal, so they share its fault:
      // the blast radius of a device error is the batch, not the engine.
      for (ActiveBatch::Rider& rider : active.riders) {
        if (rider.finished) continue;
        QueryResult result;
        result.root = rider.query->root();
        result.state = QueryState::Failed;
        result.batched = true;
        result.error = e.what();
        result.io_failures = 1;
        result.queue_wait_ms = rider.queue_wait_ms;
        result.exec_ms = ms_since(active.started);
        rider.finished = true;
        finalize_query(rider.query, std::move(result),
                       active.cache_generation);
      }
      return true;  // drop the batch
    }
  }
  if (more) return false;

  for (ActiveBatch::Rider& rider : active.riders)
    if (!rider.finished) finish_rider(rider, QueryState::Done);
  return true;
}

void QueryEngine::dispatcher_loop() {
  std::deque<QueryRef> batchable;
  std::deque<QueryRef> unbatch_high;
  std::deque<QueryRef> unbatch_normal;
  std::deque<QueryRef> analytics_queued;
  std::vector<ActiveSession> sessions;
  std::vector<ActiveAnalytics> analytics;
  std::unique_ptr<ActiveBatch> batch;

  for (;;) {
    {
      std::unique_lock<std::mutex> lock{mutex_};
      const bool idle = sessions.empty() && batch == nullptr &&
                        analytics.empty() && batchable.empty() &&
                        unbatch_high.empty() && unbatch_normal.empty() &&
                        analytics_queued.empty();
      if (idle)
        work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      for (QueryRef& query : queue_) {
        if (query->options().kind != QueryKind::Bfs)
          analytics_queued.push_back(std::move(query));
        else if (!query->options().batchable)
          (query->options().priority == Priority::High ? unbatch_high
                                                       : unbatch_normal)
              .push_back(std::move(query));
        else
          batchable.push_back(std::move(query));
      }
      queue_.clear();
      if (obs::enabled()) obs_queue_depth_->set(0);
      if (stop_ && queue_.empty() && sessions.empty() && batch == nullptr &&
          analytics.empty() && batchable.empty() && unbatch_high.empty() &&
          unbatch_normal.empty() && analytics_queued.empty())
        return;  // drained shutdown
    }

    // Deadlines are end-to-end: a query can expire before it ever runs.
    cull_queued(batchable);
    cull_queued(unbatch_high);
    cull_queued(unbatch_normal);
    cull_queued(analytics_queued);

    // High lane drains into the slot pool before normal — when slots are
    // the bottleneck, priority decides who waits.
    admit_sessions(unbatch_high, sessions);
    admit_sessions(unbatch_normal, sessions);
    admit_analytics(analytics_queued, analytics);
    if (batch == nullptr && !batchable.empty()) batch = make_batch(batchable);

    // One level of everything per tick — the interleaving that makes the
    // engine concurrent while the pool stays single-tenant. Analytics
    // supersteps interleave with BFS levels the same way.
    step_sessions(sessions);
    step_analytics(analytics);
    if (batch != nullptr && tick_batch(*batch)) batch.reset();
  }
}

}  // namespace sembfs::serve
