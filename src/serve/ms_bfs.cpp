#include "serve/ms_bfs.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>

#include "bfs/sweep.hpp"
#include "graph/hybrid_csr.hpp"
#include "obs/metrics.hpp"
#include "util/contracts.hpp"
#include "util/timer.hpp"

namespace sembfs::serve {

namespace {

struct SweepState {
  explicit SweepState(std::size_t nodes) : cursors(nodes) {
    for (auto& c : cursors) c.store(0, std::memory_order_relaxed);
  }
  std::vector<std::atomic<std::int64_t>> cursors;  // offset within node range
  std::atomic<std::int64_t> claimed{0};
  std::atomic<std::int64_t> scanned{0};
  std::atomic<std::uint64_t> words_swept{0};
  std::atomic<std::uint64_t> words_skipped{0};
  std::array<std::atomic<std::int64_t>, MsBfsBatch::kMaxBatch> lane_claims{};
};

/// Adapters giving the two backward-graph kinds one visit shape:
/// visit(v, scratch, fn) calls fn(neighbor) until fn returns false.
struct DramPart {
  const Csr* csr;
  [[nodiscard]] VertexRange range() const noexcept {
    return csr->source_range();
  }
  template <typename Fn>
  void visit(Vertex v, std::vector<Vertex>& /*scratch*/, Fn&& fn) const {
    for (const Vertex u : csr->neighbors(v))
      if (!fn(u)) return;
  }
};

struct HybridPart {
  HybridBackwardPartition* part;
  [[nodiscard]] VertexRange range() const noexcept {
    return part->source_range();
  }
  template <typename Fn>
  void visit(Vertex v, std::vector<Vertex>& scratch, Fn&& fn) const {
    part->visit_neighbors(v, scratch, static_cast<Fn&&>(fn));
  }
};

/// One MS-BFS level: the word-skip sweep over every node partition,
/// gathering neighbor frontier words into the uncovered vertices. Shares
/// bottom_up.cpp's shape (per-node work-stealing cursors, worker-local
/// counters flushed once) with the per-vertex claim generalized from one
/// bit to a 64-lane word.
template <typename MakePart>
void run_level(SweepState& state, ThreadPool& pool,
               const NumaTopology& topology, std::size_t node_count,
               MakePart&& make_part, std::uint64_t live, std::int64_t chunk,
               std::int32_t level, std::size_t width, std::uint64_t* seen,
               const std::uint64_t* frontier, std::uint64_t* next,
               AtomicBitmap& covered,
               std::vector<std::vector<std::int32_t>>& levels,
               std::vector<std::vector<Vertex>>& parents,
               bool record_parents, const DeltaBuffer* delta) {
  const std::size_t workers =
      std::min<std::size_t>(pool.size(), topology.total_threads());
  pool.run(workers, [&](std::size_t w) {
    std::vector<Vertex> scratch;  // NVM chunk staging (hybrid only)
    std::int64_t local_claimed = 0;
    std::int64_t local_scanned = 0;
    std::uint64_t local_swept = 0;
    std::uint64_t local_skipped = 0;
    std::array<std::int64_t, MsBfsBatch::kMaxBatch> local_lane{};

    for_each_assigned_node(w, workers, node_count, [&](std::size_t node) {
      const auto part = make_part(node);
      const VertexRange range = part.range();
      auto& cursor = state.cursors[node];
      for (;;) {
        const std::int64_t lo =
            cursor.fetch_add(chunk, std::memory_order_relaxed);
        if (lo >= range.size()) break;
        const std::int64_t hi =
            std::min<std::int64_t>(range.size(), lo + chunk);
        const auto [swept, skipped] = sweep_unvisited(
            covered, range.begin + lo, range.begin + hi, [&](Vertex v) {
              const auto vi = static_cast<std::size_t>(v);
              const std::uint64_t have = seen[vi];
              if ((have & live) == live) {
                // Saturated lazily — e.g. the lanes that still needed v
                // died since the bit was last checked.
                covered.set(vi);
                return;
              }
              std::uint64_t gathered = 0;
              const auto gather = [&](Vertex u) {
                ++local_scanned;
                const std::uint64_t fresh =
                    frontier[static_cast<std::size_t>(u)] & live & ~have &
                    ~gathered;
                if (fresh != 0) {
                  if (record_parents) {
                    // The contributing neighbor is the parent for exactly
                    // the lanes u freshly covers.
                    for_each_set_in_word(fresh, 0, [&](std::size_t q) {
                      parents[q][vi] = u;
                    });
                  }
                  gathered |= fresh;
                  if (((have | gathered) & live) == live)
                    return false;  // all live lanes found v: early exit
                }
                return true;
              };
              // Delta-inserted in-neighbors first (DRAM-cheap; an early
              // saturation here skips the base scan), then the base
              // adjacency with tombstoned pairs filtered out.
              bool open = true;
              if (delta != nullptr && delta->has_inserts(v)) {
                for (const Vertex u : delta->inserted(v)) {
                  if (!gather(u)) {
                    open = false;
                    break;
                  }
                }
              }
              if (open) {
                part.visit(v, scratch, [&](Vertex u) {
                  if (delta != nullptr && delta->edge_removed(v, u)) {
                    ++local_scanned;
                    return true;
                  }
                  return gather(u);
                });
              }
              if (gathered != 0) {
                // Single-writer per vertex: each uncovered vertex is swept
                // by exactly one worker per level (chunk ownership), so
                // these plain stores race with nothing.
                seen[vi] = have | gathered;
                next[vi] = gathered;
                for_each_set_in_word(gathered, 0, [&](std::size_t q) {
                  levels[q][vi] = level;
                  ++local_lane[q];
                });
                local_claimed += std::popcount(gathered);
                if (((have | gathered) & live) == live) covered.set(vi);
              }
            });
        local_swept += swept;
        local_skipped += skipped;
      }
    });
    state.claimed.fetch_add(local_claimed, std::memory_order_relaxed);
    state.scanned.fetch_add(local_scanned, std::memory_order_relaxed);
    state.words_swept.fetch_add(local_swept, std::memory_order_relaxed);
    state.words_skipped.fetch_add(local_skipped, std::memory_order_relaxed);
    for (std::size_t q = 0; q < width; ++q)
      if (local_lane[q] != 0)
        state.lane_claims[q].fetch_add(local_lane[q],
                                       std::memory_order_relaxed);
  });
}

}  // namespace

MsBfsBatch::MsBfsBatch(const GraphStorage& storage,
                       const NumaTopology& topology, ThreadPool& pool,
                       std::span<const Vertex> roots,
                       const MsBfsConfig& config)
    : storage_(storage), topology_(topology), pool_(pool), config_(config) {
  SEMBFS_EXPECTS(!roots.empty() && roots.size() <= kMaxBatch);
  SEMBFS_EXPECTS(storage_.backward_dram != nullptr ||
                 storage_.backward_hybrid != nullptr);
  SEMBFS_EXPECTS(config_.sweep_chunk >= 1);
  const Vertex n = storage_.vertex_count();
  width_ = roots.size();
  live_mask_ = width_ == kMaxBatch
                   ? ~std::uint64_t{0}
                   : (std::uint64_t{1} << width_) - 1;
  roots_.assign(roots.begin(), roots.end());

  seen_.assign(static_cast<std::size_t>(n), 0);
  frontier_.assign(static_cast<std::size_t>(n), 0);
  next_.assign(static_cast<std::size_t>(n), 0);
  covered_.resize(static_cast<std::size_t>(n));

  levels_.resize(width_);
  parents_.resize(width_);
  visited_.assign(width_, 1);  // the root itself
  depth_.assign(width_, 0);
  for (std::size_t q = 0; q < width_; ++q) {
    const Vertex root = roots_[q];
    SEMBFS_EXPECTS(root >= 0 && root < n);
    levels_[q].assign(static_cast<std::size_t>(n), -1);
    levels_[q][static_cast<std::size_t>(root)] = 0;
    if (config_.record_parents) {
      parents_[q].assign(static_cast<std::size_t>(n), kNoVertex);
      parents_[q][static_cast<std::size_t>(root)] = root;
    }
    seen_[static_cast<std::size_t>(root)] |= std::uint64_t{1} << q;
    frontier_[static_cast<std::size_t>(root)] |= std::uint64_t{1} << q;
  }
}

bool MsBfsBatch::step() {
  if (done_) return false;
  if (live_mask_ == 0) {
    done_ = true;
    return false;
  }
  Timer timer;
  const bool dram = storage_.backward_dram != nullptr;
  const std::size_t nodes = dram ? storage_.backward_dram->node_count()
                                 : storage_.backward_hybrid->node_count();
  SweepState state{nodes};
  if (dram) {
    run_level(
        state, pool_, topology_, nodes,
        [&](std::size_t node) {
          return DramPart{&storage_.backward_dram->partition(node)};
        },
        live_mask_, config_.sweep_chunk, level_, width_, seen_.data(),
        frontier_.data(), next_.data(), covered_, levels_, parents_,
        config_.record_parents, storage_.delta);
  } else {
    run_level(
        state, pool_, topology_, nodes,
        [&](std::size_t node) {
          return HybridPart{&storage_.backward_hybrid->partition(node)};
        },
        live_mask_, config_.sweep_chunk, level_, width_, seen_.data(),
        frontier_.data(), next_.data(), covered_, levels_, parents_,
        config_.record_parents, storage_.delta);
  }

  const std::int64_t claimed = state.claimed.load(std::memory_order_relaxed);
  scanned_edges_ += state.scanned.load(std::memory_order_relaxed);
  for (std::size_t q = 0; q < width_; ++q) {
    const std::int64_t c =
        state.lane_claims[q].load(std::memory_order_relaxed);
    if (c != 0) {
      visited_[q] += c;
      depth_[q] = level_;
    }
  }

  if (obs::enabled()) {
    static obs::Counter* const levels =
        &obs::metrics().counter("serve.msbfs.levels");
    static obs::Counter* const claims =
        &obs::metrics().counter("serve.msbfs.claims");
    static obs::Counter* const swept =
        &obs::metrics().counter("serve.msbfs.words_swept");
    static obs::Counter* const skipped =
        &obs::metrics().counter("serve.msbfs.words_skipped");
    levels->add(1);
    claims->add(static_cast<std::uint64_t>(claimed));
    swept->add(state.words_swept.load(std::memory_order_relaxed));
    skipped->add(state.words_skipped.load(std::memory_order_relaxed));
  }

  advance(claimed);
  seconds_ += timer.seconds();
  ++level_;
  return !done_;
}

void MsBfsBatch::deactivate(std::size_t q) noexcept {
  SEMBFS_ASSERT(q < width_);
  live_mask_ &= ~(std::uint64_t{1} << q);
  // The dead lane's frontier/seen bits stay in place; every gather masks
  // with the live word, so they are inert. O(1) by design.
}

void MsBfsBatch::advance(std::int64_t claimed_this_level) {
  // next -> frontier; the old frontier array becomes next and must be
  // zeroed (claims write next[v] with =, so stale words would resurrect).
  std::swap(frontier_, next_);
  std::uint64_t* const data = next_.data();
  const std::size_t n = next_.size();
  const std::size_t workers = pool_.size();
  constexpr std::size_t kSerialWords = 1 << 14;  // 128 KiB, as clear_parallel
  if (n <= kSerialWords || workers <= 1) {
    std::fill_n(data, n, std::uint64_t{0});
  } else {
    pool_.run(workers, [data, n, workers](std::size_t w) {
      const std::size_t chunk = (n + workers - 1) / workers;
      const std::size_t lo = w * chunk;
      const std::size_t hi = lo + chunk < n ? lo + chunk : n;
      for (std::size_t i = lo; i < hi; ++i) data[i] = 0;
    });
  }
  if (claimed_this_level == 0 || live_mask_ == 0) done_ = true;
}

}  // namespace sembfs::serve
