#include "serve/query.hpp"

namespace sembfs::serve {

const char* to_string(QueryState state) noexcept {
  switch (state) {
    case QueryState::Queued:
      return "queued";
    case QueryState::Running:
      return "running";
    case QueryState::Done:
      return "done";
    case QueryState::Failed:
      return "failed";
    case QueryState::Cancelled:
      return "cancelled";
    case QueryState::DeadlineExpired:
      return "deadline-expired";
    case QueryState::Rejected:
      return "rejected";
  }
  return "unknown";
}

const char* to_string(Priority priority) noexcept {
  switch (priority) {
    case Priority::Normal:
      return "normal";
    case Priority::High:
      return "high";
  }
  return "unknown";
}

const char* to_string(QueryKind kind) noexcept {
  switch (kind) {
    case QueryKind::Bfs:
      return "bfs";
    case QueryKind::Components:
      return "components";
    case QueryKind::PageRank:
      return "pagerank";
    case QueryKind::Triangles:
      return "triangles";
  }
  return "unknown";
}

}  // namespace sembfs::serve
