#include "serve/query.hpp"

namespace sembfs::serve {

const char* to_string(QueryState state) noexcept {
  switch (state) {
    case QueryState::Queued:
      return "queued";
    case QueryState::Running:
      return "running";
    case QueryState::Done:
      return "done";
    case QueryState::Failed:
      return "failed";
    case QueryState::Cancelled:
      return "cancelled";
    case QueryState::DeadlineExpired:
      return "deadline-expired";
    case QueryState::Rejected:
      return "rejected";
  }
  return "unknown";
}

}  // namespace sembfs::serve
