// One BFS query flowing through the serving engine: the client-facing
// handle (wait/cancel/result) plus the engine-facing bookkeeping (state
// machine, cancel token, timestamps).
//
// Lifecycle:
//
//   submit() ── admission ──> Queued ──> Running ──> a terminal state
//        └── queue full ──> Rejected (terminal immediately)
//
// Terminal states: Done (ran to exhaustion or its max_levels cap), Failed
// (an I/O error escaped containment), Cancelled (the client's cancel() was
// observed), DeadlineExpired (the end-to-end deadline — queue wait
// included — passed before the search finished; a query can expire while
// still queued, which is the admission-control backpressure signal), and
// Rejected (bounded queue full at submit).
//
// The Query object is shared between the submitting client and the engine
// dispatcher (via std::shared_ptr), so it owns its own mutex/cv; the
// engine finalizes exactly once, clients may wait()/poll from any thread.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bfs/cancel.hpp"
#include "graph/types.hpp"

namespace sembfs::serve {

using QueryId = std::uint64_t;

enum class QueryState {
  Queued,
  Running,
  Done,
  Failed,
  Cancelled,
  DeadlineExpired,
  Rejected,
};

[[nodiscard]] const char* to_string(QueryState state) noexcept;

/// True for the states a query can never leave.
[[nodiscard]] constexpr bool is_terminal(QueryState state) noexcept {
  return state != QueryState::Queued && state != QueryState::Running;
}

/// What the query computes. Bfs is the original root-driven traversal;
/// the rest are whole-graph analytics served by the vertex-program engine
/// (engine/program_session.hpp), one superstep per dispatcher tick.
enum class QueryKind {
  Bfs,
  Components,
  PageRank,
  Triangles,
};

[[nodiscard]] const char* to_string(QueryKind kind) noexcept;

/// Admission lane. High-lane queries drain first at every stage — the
/// dispatcher admits them before normal traffic and the cost-aware batch
/// planner orders them ahead of every normal entry — and the engine can
/// reserve admission-queue headroom for them (EngineConfig::high_reserve).
enum class Priority {
  Normal,
  High,
};

[[nodiscard]] const char* to_string(Priority priority) noexcept;

struct QueryOptions {
  /// Set via QueryEngine::submit_analytics(); plain submit() serves Bfs.
  QueryKind kind = QueryKind::Bfs;
  /// End-to-end deadline in milliseconds, measured from submit() — queue
  /// wait counts against it. <= 0 means the engine's default; a default of
  /// 0 means no deadline.
  double deadline_ms = 0.0;
  /// Stop after this many BFS levels (k-hop neighborhood); 0 = unbounded.
  std::int32_t max_levels = 0;
  /// May this query be packed into an MS-BFS batch? Batched queries share
  /// one traversal (and its fault blast radius) with up to 63 others; a
  /// non-batchable query always gets its own BfsSession.
  bool batchable = true;
  /// Admission lane (see Priority above).
  Priority priority = Priority::Normal;
  /// Tenant the query is billed to. With EngineConfig::tenant_quota > 0 a
  /// tenant whose accepted-and-unfinished count reaches the quota is
  /// rejected immediately ("tenant quota exceeded"); per-tenant
  /// serve.tenant.<id>.* counters track submitted/rejected/completed.
  std::uint32_t tenant = 0;
};

/// Everything the engine hands back for one finished query. Level/parent
/// vectors are copies — the status slot or batch lane that produced them
/// is already recycled by the time the client reads this.
struct QueryResult {
  Vertex root = kNoVertex;
  QueryKind kind = QueryKind::Bfs;
  QueryState state = QueryState::Queued;
  std::string error;                ///< human-readable, Failed only
  std::int32_t depth = 0;           ///< levels executed
  std::int64_t visited = 0;         ///< vertices reached (root included)
  bool degraded = false;            ///< any level completed via the fallback
  std::int32_t degraded_levels = 0;
  std::uint64_t io_failures = 0;    ///< contained fetch failures
  bool batched = false;             ///< served by the MS-BFS kernel
  /// Served from the hot-root result cache at submit() — the query never
  /// entered the admission queue or touched the dispatcher.
  bool cache_hit = false;
  double queue_wait_ms = 0.0;       ///< submit -> first level
  double exec_ms = 0.0;             ///< first level -> finalize
  /// BFS depth per vertex (-1 = unreached). Always populated for queries
  /// that ran; empty for Rejected and queued-expired queries.
  std::vector<std::int32_t> level;
  /// BFS tree (-1 = unreached). Populated when the execution path records
  /// parents (sessions always do; batches per EngineConfig).
  std::vector<Vertex> parent;

  // --- analytics payload (populated per kind, empty/0 otherwise) ---
  std::int32_t supersteps = 0;        ///< engine supersteps executed
  std::vector<Vertex> labels;         ///< Components: per-vertex label
  std::int64_t component_count = 0;   ///< Components
  std::vector<double> ranks;          ///< PageRank: per-vertex rank
  std::int64_t triangles = 0;         ///< Triangles: global count
};

/// Shared client/engine query object. Clients hold it as a QueryRef.
class Query {
 public:
  Query(QueryId id, Vertex root, QueryOptions options)
      : id_(id), root_(root), options_(options) {}

  Query(const Query&) = delete;
  Query& operator=(const Query&) = delete;

  [[nodiscard]] QueryId id() const noexcept { return id_; }
  [[nodiscard]] Vertex root() const noexcept { return root_; }
  [[nodiscard]] const QueryOptions& options() const noexcept {
    return options_;
  }

  [[nodiscard]] QueryState state() const {
    const std::lock_guard<std::mutex> lock{mutex_};
    return state_;
  }
  [[nodiscard]] bool finished() const { return is_terminal(state()); }

  /// Requests cooperative cancellation. The engine observes the token at
  /// level granularity; an already-terminal query is unaffected.
  void cancel() noexcept { token_.request_cancel(); }

  /// Blocks until the query reaches a terminal state.
  void wait() const {
    std::unique_lock<std::mutex> lock{mutex_};
    cv_.wait(lock, [&] { return is_terminal(state_); });
  }
  /// Timed wait; true when terminal.
  bool wait_for_ms(double ms) const {
    std::unique_lock<std::mutex> lock{mutex_};
    return cv_.wait_for(lock,
                        std::chrono::duration<double, std::milli>{ms},
                        [&] { return is_terminal(state_); });
  }

  /// The result; valid only once finished() (asserted via the state).
  [[nodiscard]] const QueryResult& result() const {
    const std::lock_guard<std::mutex> lock{mutex_};
    return result_;
  }

 private:
  friend class QueryEngine;

  /// Engine-side: Queued -> Running.
  void mark_running() {
    const std::lock_guard<std::mutex> lock{mutex_};
    state_ = QueryState::Running;
  }
  /// Engine-side: moves to a terminal state exactly once and wakes
  /// waiters. The result's state field is forced to match.
  void finalize(QueryResult result) {
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      if (is_terminal(state_)) return;
      state_ = result.state;
      result_ = std::move(result);
    }
    cv_.notify_all();
  }

  const QueryId id_;
  const Vertex root_;
  const QueryOptions options_;
  CancelToken token_;
  /// submit() timestamp (engine-side, for queue-wait accounting).
  std::chrono::steady_clock::time_point submitted_at_{};

  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  QueryState state_ = QueryState::Queued;
  QueryResult result_;
};

using QueryRef = std::shared_ptr<Query>;

}  // namespace sembfs::serve
