// Batch planner: turns the engine's queue of batchable queries into
// MS-BFS batch plans.
//
// Two planners live here, kept out of the dispatcher loop so they are
// unit-testable in isolation:
//
//   * plan_batch() — the legacy FIFO planner: up to max_lanes distinct
//     roots taken strictly in admission order (no reordering), same-root
//     queries deduped onto one lane ("riders"), total queries capped at
//     max_queries. Kept as the measurable baseline (--serve-planner fifo).
//   * plan_cost_batch() — the traffic-shaped planner: a PURE function of a
//     captured PlannerInput. High-priority entries come first; within a
//     priority class entries are ordered by laxity (deadline slack minus
//     predicted cost, cost_model.hpp), so a cheap near-deadline query
//     jumps ahead of an expensive slack one. Entries without deadlines
//     keep admission order behind the deadline-bearing ones. Root dedup
//     and the lane/query caps apply the same way.
//
// Determinism contract: plan_cost_batch() sees only the PlannerInput the
// dispatcher captured (degrees, slacks, congestion sample) — given the
// same input it returns the same plan, and a PlannerLog can record every
// (input, decision) pair the way TraceLog records SwitchPolicy decisions
// (docs/SERVING.md). Neither planner looks at fault state; expired
// queries are culled by the dispatcher before planning.
#pragma once

#include <cstddef>
#include <deque>
#include <limits>
#include <mutex>
#include <vector>

#include "graph/types.hpp"
#include "serve/cost_model.hpp"
#include "serve/query.hpp"

namespace sembfs::serve {

/// Which batch-formation policy the engine runs.
enum class PlannerMode {
  Fifo,       ///< admission order, no cost/deadline awareness (baseline)
  CostAware,  ///< priority lanes + laxity ordering over PlannerInput
};

[[nodiscard]] const char* to_string(PlannerMode mode) noexcept;

/// One planned MS-BFS batch: `roots[q]` is lane q's root, and
/// `lane_of[i]` maps `queries[i]` to its lane (several queries may map to
/// the same lane — root dedup).
struct BatchPlan {
  std::vector<Vertex> roots;
  std::vector<QueryRef> queries;
  std::vector<std::size_t> lane_of;

  [[nodiscard]] std::size_t width() const noexcept { return roots.size(); }
  [[nodiscard]] bool empty() const noexcept { return queries.empty(); }
};

/// Plans one batch from the front of `queued`, consuming the queries it
/// packs (erases them from `queued`). Takes at most `max_lanes` distinct
/// roots; with dedup, more queries than lanes can ride one batch, capped
/// at `max_queries` total (0 = unlimited). Returns an empty plan when
/// `queued` is empty.
[[nodiscard]] BatchPlan plan_batch(std::deque<QueryRef>& queued,
                                   std::size_t max_lanes,
                                   std::size_t max_queries = 0);

/// Everything the cost-aware planner is allowed to see, captured by the
/// dispatcher at one instant. Entries are in admission order; slack and
/// the congestion sample are frozen at capture time, so the plan is a
/// pure function of this struct.
struct PlannerInput {
  struct Entry {
    Vertex root = kNoVertex;
    /// Root out-degree (0 when the storage cannot answer without device
    /// I/O — the cost model then degrades to its base term).
    std::int64_t degree = 0;
    /// Deadline slack at capture; +infinity when no deadline is armed.
    double slack_ms = std::numeric_limits<double>::infinity();
    Priority priority = Priority::Normal;
  };
  std::vector<Entry> entries;
  CongestionSignal congestion;
  CostModelParams cost;
  std::size_t max_lanes = 1;
  /// Total query cap, riders included (0 = unlimited).
  std::size_t max_queries = 0;
};

/// The cost-aware planner's decision: `picked[i]` indexes
/// PlannerInput::entries in plan order, `lane_of[i]` is its lane, and
/// `cost_ms[i]` the predicted cost that ordered it (kept for tracing).
/// Entries not picked stay queued for the next batch.
struct PlanDecision {
  std::vector<std::size_t> picked;
  std::vector<std::size_t> lane_of;
  std::vector<Vertex> roots;
  std::vector<double> cost_ms;

  [[nodiscard]] std::size_t width() const noexcept { return roots.size(); }
  [[nodiscard]] bool empty() const noexcept { return picked.empty(); }
};

/// Pure: same PlannerInput, same PlanDecision. Ordering is
/// (priority desc, laxity asc, admission index asc) where
/// laxity = slack_ms - predicted_cost_ms; a new root beyond the lane cap
/// is skipped (left queued) while later same-root entries can still ride.
[[nodiscard]] PlanDecision plan_cost_batch(const PlannerInput& input);

/// One recorded batch formation — the exact input the planner saw and the
/// plan it produced, the serving analogue of a TraceSpan's PolicyInput +
/// decision.
struct PlannerSpan {
  PlannerInput input;
  PlanDecision decision;
};

/// Thread-safe log of planner decisions (EngineConfig::planner_log;
/// nullptr = off, the default).
class PlannerLog {
 public:
  PlannerLog() = default;
  PlannerLog(const PlannerLog&) = delete;
  PlannerLog& operator=(const PlannerLog&) = delete;

  void record(PlannerSpan span) {
    const std::lock_guard<std::mutex> lock{mutex_};
    spans_.push_back(std::move(span));
  }
  [[nodiscard]] std::vector<PlannerSpan> spans() const {
    const std::lock_guard<std::mutex> lock{mutex_};
    return spans_;
  }
  [[nodiscard]] std::size_t span_count() const {
    const std::lock_guard<std::mutex> lock{mutex_};
    return spans_.size();
  }
  void clear() {
    const std::lock_guard<std::mutex> lock{mutex_};
    spans_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<PlannerSpan> spans_;
};

}  // namespace sembfs::serve
