// Batch planner: turns the engine's queue of batchable queries into
// MS-BFS batch plans.
//
// Two decisions live here, kept out of the dispatcher loop so they are
// unit-testable in isolation:
//
//   * Lane packing — up to MsBfsBatch::kMaxBatch (64) queries per batch,
//     taken in FIFO admission order (no reordering: the queue order is
//     part of the determinism contract, docs/SERVING.md).
//   * Root dedup — queries for the same root share one lane. The lane's
//     traversal is computed once; every rider gets its own copy of the
//     results at finalize. Under a skewed root distribution this is the
//     cheapest QPS win in the engine.
//
// The planner never looks at deadlines or fault state; expired queries
// are culled by the dispatcher before planning.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/types.hpp"
#include "serve/query.hpp"

namespace sembfs::serve {

/// One planned MS-BFS batch: `roots[q]` is lane q's root, and
/// `lane_of[i]` maps `queries[i]` to its lane (several queries may map to
/// the same lane — root dedup).
struct BatchPlan {
  std::vector<Vertex> roots;
  std::vector<QueryRef> queries;
  std::vector<std::size_t> lane_of;

  [[nodiscard]] std::size_t width() const noexcept { return roots.size(); }
  [[nodiscard]] bool empty() const noexcept { return queries.empty(); }
};

/// Plans one batch from the front of `queued`, consuming the queries it
/// packs (erases them from `queued`). Takes at most `max_lanes` distinct
/// roots; with dedup, more queries than lanes can ride one batch, capped
/// at `max_queries` total (0 = unlimited). Returns an empty plan when
/// `queued` is empty.
[[nodiscard]] BatchPlan plan_batch(std::vector<QueryRef>& queued,
                                   std::size_t max_lanes,
                                   std::size_t max_queries = 0);

}  // namespace sembfs::serve
