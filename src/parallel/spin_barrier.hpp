// Sense-reversing spin barrier for tight per-level synchronization inside a
// single ThreadPool region (BFS levels synchronize all workers between the
// expand and the frontier-swap phases).
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>

#include "util/contracts.hpp"

namespace sembfs {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t participants)
      : participants_(participants), remaining_(participants) {
    SEMBFS_EXPECTS(participants >= 1);
  }

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Blocks until all participants arrive. Reusable across phases.
  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(participants_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      std::size_t spins = 0;
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        if (++spins > 1024) std::this_thread::yield();
      }
    }
  }

 private:
  const std::size_t participants_;
  std::atomic<std::size_t> remaining_;
  std::atomic<bool> sense_{false};
};

}  // namespace sembfs
