// Persistent worker pool used by every parallel kernel in the library.
//
// Design notes:
//  - Workers are created once and reused across BFS levels; a BFS on a
//    SCALE 27 graph runs thousands of parallel regions, so per-region thread
//    creation would dominate.
//  - run(n, fn) executes fn(worker_index) on n workers and *blocks* until
//    all return — the fork/join shape of an OpenMP parallel region.
//  - Worker index is stable within a region, which the NUMA layer uses to
//    map workers onto emulated nodes.
//
// ## Pool-exclusivity contract
//
// run() is NOT reentrant and regions do not nest: at any instant at most
// one thread may be inside run() (a second caller would trip the
// no-recursive-regions assertion, or serialize behind the first in a way
// the kernels' per-region cursors don't expect). Every layer above
// therefore treats the pool as an exclusively-held resource per parallel
// region: the BFS session runs its level kernels one at a time, and the
// serving engine (src/serve) funnels ALL pool work — every query's levels,
// batched or not — through its single dispatcher thread. While a
// QueryEngine is running, the pool belongs to it; other threads must not
// call run() on the same pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace sembfs {

class ThreadPool {
 public:
  /// Creates `threads` persistent workers (>= 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Runs fn(worker) for worker in [0, participants) and waits for all.
  /// participants must be <= size(). fn may not call run() recursively.
  /// Exceptions thrown by fn propagate to the caller (first one wins).
  void run(std::size_t participants, const std::function<void(std::size_t)>& fn);

  /// Convenience: all workers participate.
  void run(const std::function<void(std::size_t)>& fn) { run(size(), fn); }

  /// Labels pool workers with emulated NUMA node ids for observability:
  /// while metrics are enabled, each worker's execution of a parallel
  /// region is timed into the per-node histogram `pool.node<k>.step_us`
  /// (unlabeled workers record into `pool.step_us`). Workers beyond
  /// `node_of_worker.size()` stay unlabeled. Must not be called while a
  /// region is running; typically set once per BFS session from its
  /// NumaTopology. A call with the labels already in effect is a cheap
  /// no-op (one vector compare, no registry traffic) — the serving engine
  /// constructs a session per query on a fixed topology, so the rebind
  /// must not cost anything on that path.
  void set_worker_nodes(const std::vector<std::size_t>& node_of_worker);

 private:
  void worker_loop(std::size_t index);

  std::vector<std::thread> workers_;

  // Observability handles (global registry). worker_step_hist_ is guarded
  // by mutex_: workers pick up their histogram alongside the job, so a
  // between-regions set_worker_nodes() is safely published.
  obs::Histogram* default_step_hist_;
  obs::Counter* regions_;
  std::vector<obs::Histogram*> worker_step_hist_;
  /// Labels currently in effect (guarded by mutex_), so an unchanged
  /// rebind can be skipped without touching the registry.
  std::vector<std::size_t> worker_nodes_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t participants_ = 0;
  std::size_t remaining_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr first_error_;
  bool shutdown_ = false;
};

/// Process-wide default pool, sized once from `threads` on first use.
/// Subsequent calls ignore the argument and return the same pool.
ThreadPool& default_pool(std::size_t threads = 0);

}  // namespace sembfs
