// Atomic helpers absent from <atomic>: fetch_min / fetch_max via CAS, and a
// compare-and-claim on int64 slots used by the BFS parent array
// (tree(w) = -1 -> tree(w) = v exactly once across threads).
#pragma once

#include <atomic>
#include <cstdint>

namespace sembfs {

/// Atomically sets *slot = min(*slot, value). Returns true if it stored.
template <typename T>
bool atomic_fetch_min(std::atomic<T>& slot, T value) noexcept {
  T current = slot.load(std::memory_order_relaxed);
  while (value < current) {
    if (slot.compare_exchange_weak(current, value, std::memory_order_acq_rel,
                                   std::memory_order_relaxed))
      return true;
  }
  return false;
}

/// Atomically sets *slot = max(*slot, value). Returns true if it stored.
template <typename T>
bool atomic_fetch_max(std::atomic<T>& slot, T value) noexcept {
  T current = slot.load(std::memory_order_relaxed);
  while (value > current) {
    if (slot.compare_exchange_weak(current, value, std::memory_order_acq_rel,
                                   std::memory_order_relaxed))
      return true;
  }
  return false;
}

/// Claims slot if it currently holds `expected`; stores `desired` and
/// returns true exactly once per transition.
template <typename T>
bool atomic_claim(std::atomic<T>& slot, T expected, T desired) noexcept {
  return slot.compare_exchange_strong(expected, desired,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed);
}

}  // namespace sembfs
