// Data-parallel loop skeletons on top of ThreadPool.
//
//  - parallel_for: static block partitioning (good for uniform work like
//    bottom-up sweeps over vertex ranges).
//  - parallel_for_dynamic: atomically-claimed chunks (good for skewed work
//    like top-down neighbor expansion on power-law graphs; the paper's
//    implementation dequeues 64 vertices at a time — same idea).
//  - parallel_reduce: block partition + per-worker partials + serial combine.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "util/contracts.hpp"

namespace sembfs {

/// fn(begin, end, worker) over a static partition of [begin, end).
template <typename Fn>
void parallel_for_blocked(ThreadPool& pool, std::int64_t begin,
                          std::int64_t end, Fn&& fn) {
  SEMBFS_EXPECTS(begin <= end);
  const std::int64_t n = end - begin;
  if (n == 0) return;
  const auto workers =
      static_cast<std::int64_t>(std::min<std::size_t>(pool.size(),
                                                      static_cast<std::size_t>(n)));
  if (workers <= 1) {
    fn(begin, end, std::size_t{0});
    return;
  }
  const std::function<void(std::size_t)> body = [&](std::size_t w) {
    const auto wi = static_cast<std::int64_t>(w);
    const std::int64_t chunk = (n + workers - 1) / workers;
    const std::int64_t lo = begin + wi * chunk;
    const std::int64_t hi = std::min(end, lo + chunk);
    if (lo < hi) fn(lo, hi, w);
  };
  pool.run(static_cast<std::size_t>(workers), body);
}

/// fn(i) for every i in [begin, end), statically partitioned.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  Fn&& fn) {
  parallel_for_blocked(pool, begin, end,
                       [&fn](std::int64_t lo, std::int64_t hi, std::size_t) {
                         for (std::int64_t i = lo; i < hi; ++i) fn(i);
                       });
}

/// fn(lo, hi, worker) over dynamically claimed chunks of `chunk` items.
template <typename Fn>
void parallel_for_dynamic(ThreadPool& pool, std::int64_t begin,
                          std::int64_t end, std::int64_t chunk, Fn&& fn) {
  SEMBFS_EXPECTS(begin <= end);
  SEMBFS_EXPECTS(chunk >= 1);
  const std::int64_t n = end - begin;
  if (n == 0) return;
  if (pool.size() == 1 || n <= chunk) {
    fn(begin, end, std::size_t{0});
    return;
  }
  std::atomic<std::int64_t> next{begin};
  const std::function<void(std::size_t)> body = [&](std::size_t w) {
    for (;;) {
      const std::int64_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) return;
      const std::int64_t hi = std::min(end, lo + chunk);
      fn(lo, hi, w);
    }
  };
  pool.run(body);
}

/// Block-partitioned reduction: partial(worker) seeded with `identity`,
/// accumulated by fn(partial&, i), combined with combine(a, b).
template <typename T, typename Fn, typename Combine>
T parallel_reduce(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                  T identity, Fn&& fn, Combine&& combine) {
  std::vector<T> partials(pool.size(), identity);
  parallel_for_blocked(pool, begin, end,
                       [&](std::int64_t lo, std::int64_t hi, std::size_t w) {
                         T acc = identity;
                         for (std::int64_t i = lo; i < hi; ++i) fn(acc, i);
                         partials[w] = acc;
                       });
  T total = identity;
  for (const T& p : partials) total = combine(total, p);
  return total;
}

}  // namespace sembfs
