#include "parallel/thread_pool.hpp"

#include <thread>

#include "util/contracts.hpp"

namespace sembfs {

ThreadPool::ThreadPool(std::size_t threads) {
  SEMBFS_EXPECTS(threads >= 1);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::run(std::size_t participants,
                     const std::function<void(std::size_t)>& fn) {
  SEMBFS_EXPECTS(participants <= workers_.size());
  if (participants == 0) return;

  std::unique_lock<std::mutex> lock{mutex_};
  SEMBFS_ASSERT(job_ == nullptr);  // no recursive regions
  job_ = &fn;
  participants_ = participants;
  remaining_ = participants;
  first_error_ = nullptr;
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadPool::worker_loop(std::size_t index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      work_cv_.wait(lock, [&] {
        return shutdown_ ||
               (job_ != nullptr && generation_ != seen_generation &&
                index < participants_);
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    std::exception_ptr error;
    try {
      (*job)(index);
    } catch (...) {
      error = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      if (error && !first_error_) first_error_ = error;
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

ThreadPool& default_pool(std::size_t threads) {
  static ThreadPool pool{[&] {
    if (threads != 0) return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? std::size_t{1} : std::size_t{hw};
  }()};
  return pool;
}

}  // namespace sembfs
