#include "parallel/thread_pool.hpp"

#include <chrono>
#include <string>
#include <thread>

#include "util/contracts.hpp"

namespace sembfs {

ThreadPool::ThreadPool(std::size_t threads)
    : default_step_hist_(&obs::metrics().histogram("pool.step_us")),
      regions_(&obs::metrics().counter("pool.regions")) {
  SEMBFS_EXPECTS(threads >= 1);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::run(std::size_t participants,
                     const std::function<void(std::size_t)>& fn) {
  SEMBFS_EXPECTS(participants <= workers_.size());
  if (participants == 0) return;

  std::unique_lock<std::mutex> lock{mutex_};
  SEMBFS_ASSERT(job_ == nullptr);  // no recursive regions
  job_ = &fn;
  participants_ = participants;
  remaining_ = participants;
  first_error_ = nullptr;
  ++generation_;
  if (obs::enabled()) regions_->add(1);
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadPool::set_worker_nodes(
    const std::vector<std::size_t>& node_of_worker) {
  {
    // Unchanged topology: skip the rebind entirely. Sessions are built per
    // query under the serving engine, all against one topology, so this is
    // the common case — one vector compare instead of a registry walk.
    const std::lock_guard<std::mutex> lock{mutex_};
    SEMBFS_EXPECTS(job_ == nullptr);  // never relabel mid-region
    if (node_of_worker == worker_nodes_ && !worker_step_hist_.empty())
      return;
  }
  // Resolve histograms outside the lock (registry interning takes its own).
  std::vector<obs::Histogram*> hists(workers_.size(), default_step_hist_);
  for (std::size_t w = 0; w < hists.size() && w < node_of_worker.size(); ++w)
    hists[w] = &obs::metrics().histogram(
        "pool.node" + std::to_string(node_of_worker[w]) + ".step_us");
  const std::lock_guard<std::mutex> lock{mutex_};
  SEMBFS_EXPECTS(job_ == nullptr);  // never relabel mid-region
  worker_step_hist_ = std::move(hists);
  worker_nodes_ = node_of_worker;
}

void ThreadPool::worker_loop(std::size_t index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    obs::Histogram* step_hist = nullptr;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      work_cv_.wait(lock, [&] {
        return shutdown_ ||
               (job_ != nullptr && generation_ != seen_generation &&
                index < participants_);
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
      step_hist = index < worker_step_hist_.size() ? worker_step_hist_[index]
                                                   : default_step_hist_;
    }
    std::exception_ptr error;
    if (obs::enabled()) {
      const auto start = std::chrono::steady_clock::now();
      try {
        (*job)(index);
      } catch (...) {
        error = std::current_exception();
      }
      step_hist->record(static_cast<std::uint64_t>(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count() *
          1e6));
    } else {
      try {
        (*job)(index);
      } catch (...) {
        error = std::current_exception();
      }
    }
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      if (error && !first_error_) first_error_ = error;
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

ThreadPool& default_pool(std::size_t threads) {
  static ThreadPool pool{[&] {
    if (threads != 0) return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? std::size_t{1} : std::size_t{hw};
  }()};
  return pool;
}

}  // namespace sembfs
