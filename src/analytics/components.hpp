// Connected components — the most common BFS-adjacent analysis on the
// social-network-style graphs that motivate the paper's introduction.
//
// Two algorithms over the same whole-graph CSR:
//   - components_bfs: exact, by sweeping BFS from every unvisited vertex
//     (serial outer loop; simple and the test oracle).
//   - components_label_propagation: parallel min-label propagation until a
//     fixpoint; equivalent result, parallel-friendly.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "parallel/thread_pool.hpp"

namespace sembfs {

struct ComponentsResult {
  /// Component label per vertex (the smallest vertex ID in the component).
  std::vector<Vertex> label;
  std::int64_t component_count = 0;
  std::int64_t largest_size = 0;
  Vertex largest_label = kNoVertex;
  std::int64_t isolated_count = 0;  ///< size-1 components
  int iterations = 0;               ///< label propagation rounds (LP only)

  /// Size of the component containing v.
  [[nodiscard]] std::int64_t size_of(Vertex v) const;

  /// label -> size map, built on demand.
  [[nodiscard]] std::vector<std::pair<Vertex, std::int64_t>>
  component_sizes() const;
};

/// Exact components via repeated BFS. `csr` must cover all sources.
ComponentsResult components_bfs(const Csr& csr);

/// Parallel min-label propagation. Identical labels to components_bfs.
ComponentsResult components_label_propagation(const Csr& csr,
                                              ThreadPool& pool);

}  // namespace sembfs
