// BFS-distance statistics: hop-distance histogram over sampled sources,
// mean distance, median, and the effective diameter (the 90th-percentile
// pairwise hop distance commonly reported for social networks).
#pragma once

#include <cstdint>
#include <vector>

#include "bfs/hybrid_bfs.hpp"
#include "graph/types.hpp"

namespace sembfs {

struct DistanceStats {
  /// histogram[d] = number of (sampled source, reachable vertex) pairs at
  /// hop distance d.
  std::vector<std::int64_t> histogram;
  std::int64_t sampled_sources = 0;
  std::int64_t reachable_pairs = 0;
  double mean_distance = 0.0;
  std::int32_t median_distance = 0;
  /// Smallest d such that >= 90% of reachable pairs are within d hops.
  std::int32_t effective_diameter = 0;
  /// Largest observed finite distance across the samples.
  std::int32_t max_observed = 0;
};

/// Runs one BFS per source through `runner` and accumulates the histogram.
DistanceStats sample_distances(HybridBfsRunner& runner,
                               std::span<const Vertex> sources,
                               const BfsConfig& config = {});

/// Same sampling loop expressed over the vertex-program engine: one
/// BfsProgram session per source against `storage`. The runner overload
/// delegates here.
DistanceStats sample_distances(const GraphStorage& storage,
                               const NumaTopology& topology, ThreadPool& pool,
                               std::span<const Vertex> sources,
                               const BfsConfig& config = {});

/// Folds a single BFS level array into an existing histogram (exposed for
/// callers that already have BFS results).
void accumulate_levels(std::span<const std::int32_t> levels,
                       std::vector<std::int64_t>& histogram);

/// Computes the derived statistics from a filled histogram.
DistanceStats summarize_histogram(std::vector<std::int64_t> histogram,
                                  std::int64_t sampled_sources);

}  // namespace sembfs
