#include "analytics/components.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "engine/components_program.hpp"
#include "engine/program_session.hpp"
#include "graph/forward_graph.hpp"
#include "numa/topology.hpp"
#include "util/contracts.hpp"

namespace sembfs {

namespace {

void finalize_stats(ComponentsResult& result) {
  std::map<Vertex, std::int64_t> sizes;
  for (const Vertex l : result.label) ++sizes[l];
  result.component_count = static_cast<std::int64_t>(sizes.size());
  result.largest_size = 0;
  result.isolated_count = 0;
  for (const auto& [label, size] : sizes) {
    if (size > result.largest_size) {
      result.largest_size = size;
      result.largest_label = label;
    }
    if (size == 1) ++result.isolated_count;
  }
}

}  // namespace

std::int64_t ComponentsResult::size_of(Vertex v) const {
  SEMBFS_EXPECTS(v >= 0 && v < static_cast<Vertex>(label.size()));
  const Vertex target = label[static_cast<std::size_t>(v)];
  return static_cast<std::int64_t>(
      std::count(label.begin(), label.end(), target));
}

std::vector<std::pair<Vertex, std::int64_t>>
ComponentsResult::component_sizes() const {
  std::map<Vertex, std::int64_t> sizes;
  for (const Vertex l : label) ++sizes[l];
  std::vector<std::pair<Vertex, std::int64_t>> out(sizes.begin(),
                                                   sizes.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  return out;
}

ComponentsResult components_bfs(const Csr& csr) {
  const Vertex n = csr.global_vertex_count();
  SEMBFS_EXPECTS(csr.source_range().begin == 0 &&
                 csr.source_range().end == n);

  ComponentsResult result;
  result.label.assign(static_cast<std::size_t>(n), kNoVertex);

  std::vector<Vertex> queue;
  for (Vertex root = 0; root < n; ++root) {
    if (result.label[static_cast<std::size_t>(root)] != kNoVertex) continue;
    // BFS flood fill labelled with the smallest vertex of the component —
    // which is `root`, since we scan roots in increasing order.
    result.label[static_cast<std::size_t>(root)] = root;
    queue.clear();
    queue.push_back(root);
    std::size_t head = 0;
    while (head < queue.size()) {
      const Vertex v = queue[head++];
      for (const Vertex w : csr.neighbors(v)) {
        if (result.label[static_cast<std::size_t>(w)] == kNoVertex) {
          result.label[static_cast<std::size_t>(w)] = root;
          queue.push_back(w);
        }
      }
    }
  }
  finalize_stats(result);
  return result;
}

ComponentsResult components_label_propagation(const Csr& csr,
                                              ThreadPool& pool) {
  const Vertex n = csr.global_vertex_count();
  SEMBFS_EXPECTS(csr.source_range().begin == 0 &&
                 csr.source_range().end == n);

  // Engine-backed since the vertex-program extraction: the whole-graph
  // CSR becomes a single-partition forward graph (one transient copy —
  // this helper serves DRAM-sized graphs) and the frontier-driven
  // ComponentsProgram replaces the bespoke propagation loop. Push-only
  // keeps the storage to that single forward copy; labels are identical
  // to the components_bfs oracle either way.
  ForwardGraph forward = ForwardGraph::wrap_whole(csr);
  GraphStorage storage;
  storage.forward_dram = &forward;
  const NumaTopology topology{1, std::max<std::size_t>(pool.size(), 1)};
  BfsConfig config;
  config.mode = BfsMode::TopDownOnly;

  engine::ComponentsProgram program;
  engine::ProgramSession session{program, storage, topology, pool, config};
  session.run();

  ComponentsResult result;
  result.iterations = session.supersteps_executed();
  result.label = program.labels();
  finalize_stats(result);
  return result;
}

}  // namespace sembfs
