#include "analytics/distances.hpp"

#include "engine/bfs_program.hpp"
#include "engine/program_session.hpp"
#include "util/contracts.hpp"

namespace sembfs {

void accumulate_levels(std::span<const std::int32_t> levels,
                       std::vector<std::int64_t>& histogram) {
  for (const std::int32_t level : levels) {
    if (level < 0) continue;  // unreached
    if (histogram.size() <= static_cast<std::size_t>(level))
      histogram.resize(static_cast<std::size_t>(level) + 1, 0);
    ++histogram[static_cast<std::size_t>(level)];
  }
}

DistanceStats summarize_histogram(std::vector<std::int64_t> histogram,
                                  std::int64_t sampled_sources) {
  DistanceStats stats;
  stats.histogram = std::move(histogram);
  stats.sampled_sources = sampled_sources;

  std::int64_t pairs = 0;
  double weighted = 0.0;
  for (std::size_t d = 0; d < stats.histogram.size(); ++d) {
    pairs += stats.histogram[d];
    weighted += static_cast<double>(stats.histogram[d]) *
                static_cast<double>(d);
    if (stats.histogram[d] > 0)
      stats.max_observed = static_cast<std::int32_t>(d);
  }
  stats.reachable_pairs = pairs;
  if (pairs == 0) return stats;
  stats.mean_distance = weighted / static_cast<double>(pairs);

  // Median and effective diameter from the cumulative distribution.
  std::int64_t cumulative = 0;
  bool median_found = false;
  for (std::size_t d = 0; d < stats.histogram.size(); ++d) {
    cumulative += stats.histogram[d];
    if (!median_found && 2 * cumulative >= pairs) {
      stats.median_distance = static_cast<std::int32_t>(d);
      median_found = true;
    }
    if (10 * cumulative >= 9 * pairs) {
      stats.effective_diameter = static_cast<std::int32_t>(d);
      break;
    }
  }
  return stats;
}

DistanceStats sample_distances(HybridBfsRunner& runner,
                               std::span<const Vertex> sources,
                               const BfsConfig& config) {
  return sample_distances(runner.storage(), runner.topology(), runner.pool(),
                          sources, config);
}

DistanceStats sample_distances(const GraphStorage& storage,
                               const NumaTopology& topology, ThreadPool& pool,
                               std::span<const Vertex> sources,
                               const BfsConfig& config) {
  SEMBFS_EXPECTS(!sources.empty());
  std::vector<std::int64_t> histogram;
  for (const Vertex source : sources) {
    engine::BfsProgram program{source};
    engine::ProgramSession session{program, storage, topology, pool, config};
    session.run();
    accumulate_levels(program.status().levels(), histogram);
  }
  return summarize_histogram(std::move(histogram),
                             static_cast<std::int64_t>(sources.size()));
}

}  // namespace sembfs
