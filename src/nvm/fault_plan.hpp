// Deterministic, seedable fault injection for the simulated NVM device.
//
// The paper's premise is that the top-down direction tolerates a slow,
// flaky storage tier; a FaultPlan makes "flaky" testable. Every READ
// request on a device consumes one index of a global fault sequence, and
// the plan decides — from (seed, request index) alone — whether that
// request errors, returns short, flips a bit, or stalls. Because the
// decision depends only on the sequence index, the SET of faulted indices
// is identical for a given seed regardless of thread scheduling, which is
// what lets the randomized differential sweep print one reproducible seed
// on failure.
//
// Fault kinds (all independent draws per request):
//  - read error:    the request throws NvmIoError instead of performing I/O
//  - short read:    the tail of the destination buffer never arrives
//                   (zero-filled after the real I/O)
//  - bit corruption: one deterministic byte of the destination is flipped
//  - latency spike: the modeled service time is extended by latency_spike_us
//
// The legacy NvmDevice::inject_failure_after(n) one-shot is folded in via
// fail_after_requests: sequence index n-1 (the n-th read from arming)
// errors exactly once, with none of the old countdown's decrement races.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace sembfs {

class OptionParser;

/// Error type for injected and budget-exhausted I/O failures. Derives from
/// std::runtime_error so pre-existing EXPECT_THROW(std::runtime_error)
/// call sites keep working.
class NvmIoError : public std::runtime_error {
 public:
  explicit NvmIoError(const std::string& what) : std::runtime_error(what) {}
};

/// The plan's verdict for one request index.
struct FaultDecision {
  std::uint64_t request_index = 0;
  bool read_error = false;
  bool short_read = false;
  bool corrupt = false;
  bool latency_spike = false;
  double latency_spike_us = 0.0;  ///< extra service time when spiking
  /// Deterministic per-request entropy used to place buffer mutations
  /// (corrupt byte position, short-read cut point).
  std::uint64_t entropy = 0;

  [[nodiscard]] bool any() const noexcept {
    return read_error || short_read || corrupt || latency_spike;
  }
};

/// A value type describing the fault schedule. decide(i) is pure: the same
/// (plan, i) always yields the same FaultDecision.
struct FaultPlan {
  std::uint64_t seed = 1;
  double read_error_rate = 0.0;
  double short_read_rate = 0.0;
  double corruption_rate = 0.0;
  double latency_spike_rate = 0.0;
  double latency_spike_us = 1000.0;
  /// One-shot deterministic failure: when nonzero, the read request with
  /// sequence index fail_after_requests-1 (i.e. the n-th read after the
  /// plan is armed) raises a read error exactly once. This subsumes the
  /// legacy NvmDevice::inject_failure_after hook.
  std::uint64_t fail_after_requests = 0;

  /// True when any fault can ever fire.
  [[nodiscard]] bool enabled() const noexcept {
    return read_error_rate > 0.0 || short_read_rate > 0.0 ||
           corruption_rate > 0.0 || latency_spike_rate > 0.0 ||
           fail_after_requests != 0;
  }

  [[nodiscard]] FaultDecision decide(std::uint64_t request_index) const;

  /// Registers the --fault-* options used by the example binaries.
  static void register_options(OptionParser& options);
  /// Builds a plan from options registered by register_options().
  static FaultPlan from_options(const OptionParser& options);
};

/// How the IoScheduler recovers from transient faults: bounded retries
/// with exponential backoff under an optional per-request deadline.
struct RetryPolicy {
  int max_attempts = 3;              ///< total tries per request (>= 1)
  double initial_backoff_us = 50.0;  ///< sleep before the first retry
  double backoff_multiplier = 2.0;   ///< growth factor per retry
  double max_backoff_us = 5000.0;    ///< backoff ceiling
  /// Wall-clock budget per request measured from submission; 0 disables.
  /// An expired request fails without further attempts.
  double deadline_seconds = 0.0;

  bool operator==(const RetryPolicy&) const = default;

  /// Backoff before retry number `retry` (1-based), in seconds.
  [[nodiscard]] double backoff_seconds(int retry) const noexcept;

  static void register_options(OptionParser& options);
  static RetryPolicy from_options(const OptionParser& options);
};

}  // namespace sembfs
