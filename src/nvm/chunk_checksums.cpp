#include "nvm/chunk_checksums.hpp"

#include <algorithm>
#include <array>

#include "util/contracts.hpp"

namespace sembfs {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

}  // namespace

ChunkChecksums::ChunkChecksums(std::uint32_t chunk_bytes)
    : chunk_bytes_(chunk_bytes) {
  SEMBFS_EXPECTS(chunk_bytes > 0);
}

std::uint32_t ChunkChecksums::crc32(std::span<const std::byte> data) {
  std::uint32_t c = 0xffffffffu;
  for (const std::byte b : data)
    c = kCrc32Table[(c ^ static_cast<std::uint8_t>(b)) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

void ChunkChecksums::record_buffer(const NvmBackingFile& file,
                                   std::uint64_t offset,
                                   std::span<const std::byte> data) {
  SEMBFS_EXPECTS(offset % chunk_bytes_ == 0);
  const auto file_id = reinterpret_cast<std::uintptr_t>(&file);
  const std::lock_guard<std::mutex> lock{mutex_};
  std::size_t done = 0;
  while (done < data.size()) {
    const std::size_t len =
        std::min<std::size_t>(chunk_bytes_, data.size() - done);
    const std::uint64_t chunk = (offset + done) / chunk_bytes_;
    map_[Key{file_id, chunk}] = crc32(data.subspan(done, len));
    done += len;
  }
}

std::optional<std::uint32_t> ChunkChecksums::expected(
    const NvmBackingFile& file, std::uint64_t chunk) const {
  const auto file_id = reinterpret_cast<std::uintptr_t>(&file);
  const std::lock_guard<std::mutex> lock{mutex_};
  const auto it = map_.find(Key{file_id, chunk});
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

std::size_t ChunkChecksums::chunk_count() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return map_.size();
}

}  // namespace sembfs
