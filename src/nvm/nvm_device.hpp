// Simulated NVM device and the files stored on it.
//
// NvmDevice models one *physical* device (FusionIO card / SATA SSD): it owns
// the service-model state — channel slots, queue accounting, iostat-style
// counters. NvmFile is one file living on such a device (the paper stores
// 2 x NUMA-node-count CSR files plus the edge list on a device); every file
// read/write is one request against the shared device queue, which is what
// makes the Figure 12/13 per-device iostat metrics meaningful.
//
// Read path per request:
//   1. arrive  — request joins the device queue (IoStats integral grows)
//   2. acquire — waits for one of profile.channels service slots
//   3. service — real pread(2) from the backing file, then a simulated
//                delay for the remainder of the modeled service time
//   4. depart  — slot released, counters updated
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>

#include "nvm/device_profile.hpp"
#include "nvm/io_stats.hpp"
#include "nvm/storage_file.hpp"

namespace sembfs {

class NvmDevice {
 public:
  explicit NvmDevice(DeviceProfile profile);

  NvmDevice(const NvmDevice&) = delete;
  NvmDevice& operator=(const NvmDevice&) = delete;

  [[nodiscard]] const DeviceProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] IoStats& stats() noexcept { return stats_; }
  [[nodiscard]] const IoStats& stats() const noexcept { return stats_; }

  /// Fault injection (tests / failure-handling validation): the request
  /// `requests_from_now` submissions in the future throws
  /// std::runtime_error instead of performing I/O. One-shot; counts down
  /// across all files on the device. Pass 1 to fail the very next request.
  void inject_failure_after(std::uint64_t requests_from_now) noexcept {
    fail_countdown_.store(static_cast<std::int64_t>(requests_from_now),
                          std::memory_order_relaxed);
  }
  /// Cancels a pending injected failure.
  void clear_injected_failure() noexcept {
    fail_countdown_.store(-1, std::memory_order_relaxed);
  }

  /// One modeled request of `bytes` around the real I/O in `io`.
  /// Exposed for NvmFile; not intended for direct use.
  template <typename Io>
  void submit(std::uint64_t bytes, Io&& io) {
    check_injected_failure();
    if (profile_.is_instant()) {
      const auto arrival = stats_.on_arrival();
      io();
      stats_.on_completion(arrival, bytes, 0.0);
      return;
    }
    const auto arrival = stats_.on_arrival();
    acquire_channel();
    const double service = serve(bytes, std::forward<Io>(io));
    release_channel();
    stats_.on_completion(arrival, bytes, service);
  }

 private:
  void acquire_channel();
  void release_channel();
  /// Runs `io`, pads to the modeled service time, returns seconds spent.
  double serve(std::uint64_t bytes, const std::function<void()>& io);
  /// Throws when an injected failure's countdown hits zero.
  void check_injected_failure();

  DeviceProfile profile_;
  IoStats stats_;
  std::atomic<std::int64_t> fail_countdown_{-1};

  std::mutex channel_mutex_;
  std::condition_variable channel_cv_;
  unsigned busy_channels_ = 0;
};

/// Abstract byte store the typed array / chunk-reader layers read from —
/// either one file on one device (NvmFile) or a stripe set across several
/// devices (StripedNvmFile).
class NvmBackingFile {
 public:
  virtual ~NvmBackingFile() = default;

  /// Reads buffer.size() bytes at `offset`. Each call is at least one
  /// device request.
  virtual void read(std::uint64_t offset, std::span<std::byte> buffer) = 0;
  /// Writes buffer.size() bytes at `offset`.
  virtual void write(std::uint64_t offset,
                     std::span<const std::byte> buffer) = 0;
  [[nodiscard]] virtual std::uint64_t size() const = 0;
};

/// A file stored on a simulated NVM device. All I/O is routed through the
/// device's queue/service model.
class NvmFile final : public NvmBackingFile {
 public:
  /// Creates/truncates the backing file on `device`.
  NvmFile(std::shared_ptr<NvmDevice> device, const std::string& path);
  /// Adopts an already-open backing file.
  NvmFile(std::shared_ptr<NvmDevice> device, StorageFile file);

  // Non-copyable and non-movable (owns a mutex); hold via unique_ptr when a
  // container is needed.
  NvmFile(const NvmFile&) = delete;
  NvmFile& operator=(const NvmFile&) = delete;

  [[nodiscard]] NvmDevice& device() noexcept { return *device_; }
  [[nodiscard]] const std::string& path() const noexcept {
    return file_.path();
  }
  [[nodiscard]] std::uint64_t size() const override { return file_.size(); }

  /// Reads buffer.size() bytes at `offset` as ONE device request.
  void read(std::uint64_t offset, std::span<std::byte> buffer) override;

  /// Writes buffer.size() bytes at `offset` as one device request.
  void write(std::uint64_t offset,
             std::span<const std::byte> buffer) override;

  /// Appends at the tracked logical end; returns the write offset.
  std::uint64_t append(std::span<const std::byte> buffer);

  void resize(std::uint64_t bytes) { file_.resize(bytes); }
  void sync() { file_.sync(); }

 private:
  std::shared_ptr<NvmDevice> device_;
  StorageFile file_;
  std::mutex append_mutex_;
  std::uint64_t append_offset_ = 0;
};

}  // namespace sembfs
