// Simulated NVM device and the files stored on it.
//
// NvmDevice models one *physical* device (FusionIO card / SATA SSD): it owns
// the service-model state — channel slots, queue accounting, iostat-style
// counters. NvmFile is one file living on such a device (the paper stores
// 2 x NUMA-node-count CSR files plus the edge list on a device); every file
// read/write is one request against the shared device queue, which is what
// makes the Figure 12/13 per-device iostat metrics meaningful.
//
// Read path per request:
//   0. fault decision — when a FaultPlan is armed, the read consumes one
//      fault-sequence index; an injected read error throws NvmIoError here,
//      BEFORE the request enters the queue accounting
//   1. arrive  — request joins the device queue (IoStats integral grows)
//   2. acquire — waits for one of profile.channels service slots
//   3. service — real pread(2) from the backing file, then a simulated
//                delay for the remainder of the modeled service time
//                (plus the fault plan's latency spike, when drawn)
//   4. depart  — slot released, counters updated; injected buffer faults
//                (bit corruption / short read) are applied to the
//                destination during service
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>

#include "nvm/device_profile.hpp"
#include "nvm/fault_plan.hpp"
#include "nvm/io_stats.hpp"
#include "nvm/storage_file.hpp"
#include "obs/metrics.hpp"

namespace sembfs {

class NvmDevice {
 public:
  explicit NvmDevice(DeviceProfile profile);

  NvmDevice(const NvmDevice&) = delete;
  NvmDevice& operator=(const NvmDevice&) = delete;

  [[nodiscard]] const DeviceProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] IoStats& stats() noexcept { return stats_; }
  [[nodiscard]] const IoStats& stats() const noexcept { return stats_; }

  /// Arms `plan` and resets the read fault sequence to index 0: the next
  /// READ request consumes index 0, the one after index 1, and so on.
  /// Writes never consume fault indices. Thread-safe against concurrent
  /// submitters.
  void set_fault_plan(const FaultPlan& plan);
  /// Disarms fault injection.
  void clear_fault_plan();
  [[nodiscard]] bool fault_plan_active() const noexcept {
    return faults_armed_.load(std::memory_order_acquire);
  }
  [[nodiscard]] FaultPlan fault_plan() const;
  /// Read requests decided since the plan was armed.
  [[nodiscard]] std::uint64_t fault_sequence_index() const noexcept {
    return fault_sequence_.load(std::memory_order_relaxed);
  }

  /// Legacy one-shot hook (tests / failure-handling validation), now a
  /// thin wrapper over the FaultPlan: the READ request
  /// `requests_from_now` submissions in the future throws NvmIoError
  /// exactly once. Pass 1 to fail the very next read.
  void inject_failure_after(std::uint64_t requests_from_now) {
    FaultPlan plan;
    plan.fail_after_requests = requests_from_now;
    set_fault_plan(plan);
  }
  /// Cancels a pending injected failure.
  void clear_injected_failure() { clear_fault_plan(); }

  /// One modeled request of `bytes` around the real I/O in `io` (write /
  /// opaque path: no fault injection). Exposed for NvmFile; not intended
  /// for direct use.
  template <typename Io>
  void submit(std::uint64_t bytes, Io&& io) {
    run_request(bytes, 0.0, std::forward<Io>(io));
  }

  /// One modeled READ request delivering into `dst`. Consumes one fault
  /// sequence index when a plan is armed: may throw NvmIoError (read
  /// error), extend the service time (latency spike), or mutate `dst`
  /// after the real I/O (bit corruption / short read).
  template <typename Io>
  void submit_read(std::span<std::byte> dst, Io&& io) {
    if (!faults_armed_.load(std::memory_order_acquire)) {
      run_request(dst.size(), 0.0, std::forward<Io>(io));
      return;
    }
    const FaultDecision fault = next_read_fault();  // throws on read error
    if (!fault.any()) {
      run_request(dst.size(), 0.0, std::forward<Io>(io));
      return;
    }
    run_request(dst.size(), fault.latency_spike_us * 1e-6, [&] {
      io();
      apply_buffer_faults(fault, dst);
    });
  }

 private:
  template <typename Io>
  void run_request(std::uint64_t bytes, double extra_service_seconds,
                   Io&& io) {
    const auto arrival = stats_.on_arrival();
    // Publish the instantaneous queue depth (waiting + in service) — the
    // serving cost model's congestion signal (serve/cost_model.hpp).
    if (obs::enabled())
      obs_queue_depth_->set(static_cast<std::int64_t>(stats_.in_flight()));
    if (profile_.is_instant() && extra_service_seconds <= 0.0) {
      try {
        io();
      } catch (...) {
        // The failed request still occupied the queue; complete it with
        // zero payload so in-flight accounting cannot leak.
        stats_.on_completion(arrival, 0, 0.0);
        throw;
      }
      stats_.on_completion(arrival, bytes, 0.0);
      // Instant devices model zero queueing and zero service time; record
      // the model's view rather than paying extra clock reads.
      if (obs::enabled()) record_request_metrics(0.0, 0.0, bytes);
      return;
    }
    acquire_channel();
    const bool tracked = obs::enabled();
    double wait_seconds = 0.0;
    if (tracked)
      wait_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - arrival)
                         .count();
    double service = 0.0;
    try {
      service = serve(bytes, extra_service_seconds, io);
    } catch (...) {
      release_channel();
      stats_.on_completion(arrival, 0, 0.0);
      throw;
    }
    release_channel();
    stats_.on_completion(arrival, bytes, service);
    if (tracked) {
      record_request_metrics(wait_seconds, service, bytes);
      obs_queue_depth_->set(static_cast<std::int64_t>(stats_.in_flight()));
    }
  }

  void acquire_channel();
  void release_channel();
  /// Runs `io`, pads to the modeled service time plus `extra_seconds`,
  /// returns seconds spent.
  double serve(std::uint64_t bytes, double extra_seconds,
               const std::function<void()>& io);
  /// Consumes the next fault-sequence index and returns its decision;
  /// counts the drawn faults in IoStats and throws NvmIoError on an
  /// injected read error.
  FaultDecision next_read_fault();
  /// Applies corruption / short-read mutations to the delivered buffer.
  static void apply_buffer_faults(const FaultDecision& fault,
                                  std::span<std::byte> dst);
  /// Feeds one completed request into the global metrics registry
  /// (queue-wait / service-time histograms and request/byte counters).
  /// Only called behind an obs::enabled() check.
  void record_request_metrics(double wait_seconds, double service_seconds,
                              std::uint64_t bytes) noexcept;

  DeviceProfile profile_;
  IoStats stats_;

  // Observability handles, resolved once at construction; shared by every
  // device (metrics aggregate across devices, like iostat's totals line).
  obs::Histogram* obs_queue_wait_us_;
  obs::Histogram* obs_service_us_;
  obs::Counter* obs_requests_;
  obs::Counter* obs_bytes_;
  obs::Counter* obs_read_errors_;
  obs::Counter* obs_short_reads_;
  obs::Counter* obs_corruptions_;
  obs::Counter* obs_latency_spikes_;
  obs::Gauge* obs_queue_depth_;

  std::atomic<bool> faults_armed_{false};
  std::atomic<std::uint64_t> fault_sequence_{0};
  mutable std::mutex fault_mutex_;  // guards plan_ (armed flag is atomic)
  FaultPlan plan_;

  std::mutex channel_mutex_;
  std::condition_variable channel_cv_;
  unsigned busy_channels_ = 0;
};

/// Abstract byte store the typed array / chunk-reader layers read from —
/// either one file on one device (NvmFile) or a stripe set across several
/// devices (StripedNvmFile).
class NvmBackingFile {
 public:
  virtual ~NvmBackingFile() = default;

  /// Reads buffer.size() bytes at `offset`. Each call is at least one
  /// device request.
  virtual void read(std::uint64_t offset, std::span<std::byte> buffer) = 0;
  /// Writes buffer.size() bytes at `offset`.
  virtual void write(std::uint64_t offset,
                     std::span<const std::byte> buffer) = 0;
  [[nodiscard]] virtual std::uint64_t size() const = 0;
  /// Records one retry of a failed read against this store's device(s) —
  /// called by recovery layers (IoScheduler) so IoStats sees retry work.
  virtual void record_retry() noexcept {}
};

/// A file stored on a simulated NVM device. All I/O is routed through the
/// device's queue/service model.
class NvmFile final : public NvmBackingFile {
 public:
  /// Creates/truncates the backing file on `device`.
  NvmFile(std::shared_ptr<NvmDevice> device, const std::string& path);
  /// Adopts an already-open backing file.
  NvmFile(std::shared_ptr<NvmDevice> device, StorageFile file);

  // Non-copyable and non-movable (owns a mutex); hold via unique_ptr when a
  // container is needed.
  NvmFile(const NvmFile&) = delete;
  NvmFile& operator=(const NvmFile&) = delete;

  [[nodiscard]] NvmDevice& device() noexcept { return *device_; }
  [[nodiscard]] const std::string& path() const noexcept {
    return file_.path();
  }
  [[nodiscard]] std::uint64_t size() const override { return file_.size(); }

  /// Reads buffer.size() bytes at `offset` as ONE device request.
  void read(std::uint64_t offset, std::span<std::byte> buffer) override;

  /// Writes buffer.size() bytes at `offset` as one device request.
  void write(std::uint64_t offset,
             std::span<const std::byte> buffer) override;

  void record_retry() noexcept override { device_->stats().on_retry(); }

  /// Appends at the tracked logical end; returns the write offset.
  std::uint64_t append(std::span<const std::byte> buffer);

  void resize(std::uint64_t bytes) { file_.resize(bytes); }
  void sync() { file_.sync(); }

 private:
  std::shared_ptr<NvmDevice> device_;
  StorageFile file_;
  std::mutex append_mutex_;
  std::uint64_t append_offset_ = 0;
};

}  // namespace sembfs
