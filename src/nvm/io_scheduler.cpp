#include "nvm/io_scheduler.hpp"

#include <algorithm>

#include "nvm/chunk_cache.hpp"
#include "util/contracts.hpp"

namespace sembfs {

IoScheduler::IoScheduler(std::size_t queue_depth, IoSchedulerConfig config)
    : config_(config),
      obs_queue_wait_us_(
          &obs::metrics().histogram("io_sched.queue_wait_us")),
      obs_service_us_(&obs::metrics().histogram("io_sched.service_us")),
      obs_completed_(&obs::metrics().counter("io_sched.completed")),
      obs_retries_(&obs::metrics().counter("io_sched.retries")),
      obs_failures_(&obs::metrics().counter("io_sched.failures")),
      obs_deadline_expired_(
          &obs::metrics().counter("io_sched.deadline_expired")),
      obs_budget_rejected_(
          &obs::metrics().counter("io_sched.budget_rejected")) {
  SEMBFS_EXPECTS(queue_depth >= 1 && queue_depth <= 1024);
  SEMBFS_EXPECTS(config_.retry.max_attempts >= 1);
  workers_.reserve(queue_depth);
  for (std::size_t i = 0; i < queue_depth; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

IoScheduler::~IoScheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // Workers drain the queue before exiting, so no promise is left dangling.
  SEMBFS_ASSERT(queue_.empty() && in_service_ == 0);
}

std::future<IoResult> IoScheduler::submit_read(
    NvmBackingFile& file, std::uint64_t offset, std::span<std::byte> dst,
    ChunkCache* cache, std::uint64_t max_miss_request_bytes) {
  Job job;
  job.file = &file;
  job.offset = offset;
  job.dst = dst;
  job.cache = cache;
  job.max_miss_request_bytes = max_miss_request_bytes;
  job.submitted_at = std::chrono::steady_clock::now();
  std::future<IoResult> future = job.promise.get_future();
  enqueue(std::move(job));
  return future;
}

void IoScheduler::submit_read(
    NvmBackingFile& file, std::uint64_t offset, std::span<std::byte> dst,
    std::function<void(const IoResult&)> done, ChunkCache* cache,
    std::uint64_t max_miss_request_bytes) {
  SEMBFS_EXPECTS(done != nullptr);
  Job job;
  job.file = &file;
  job.offset = offset;
  job.dst = dst;
  job.cache = cache;
  job.max_miss_request_bytes = max_miss_request_bytes;
  job.submitted_at = std::chrono::steady_clock::now();
  job.callback = std::move(done);
  enqueue(std::move(job));
}

void IoScheduler::enqueue(Job job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SEMBFS_EXPECTS(!shutdown_);
    queue_.push_back(std::move(job));
    ++submitted_;
    peak_pending_ = std::max(peak_pending_, queue_.size() + in_service_);
  }
  work_cv_.notify_one();
}

std::uint64_t IoScheduler::execute(Job& job) {
  if (job.cache != nullptr)
    return job.cache->read(*job.file, job.offset, job.dst,
                           job.max_miss_request_bytes);
  // Direct reads honor the same request-size cap the cache path applies to
  // miss runs: a range longer than max_miss_request_bytes (an oversize hub
  // adjacency the range merger could not split) is issued in capped
  // slices, never as one unbounded device request. 0 = uncapped.
  const std::size_t cap = job.max_miss_request_bytes > 0
                              ? job.max_miss_request_bytes
                              : job.dst.size();
  std::uint64_t requests = 0;
  std::size_t done = 0;
  while (done < job.dst.size()) {
    const std::size_t len = std::min(cap, job.dst.size() - done);
    job.file->read(job.offset + done, job.dst.subspan(done, len));
    done += len;
    ++requests;
  }
  requests = std::max<std::uint64_t>(requests, 1);
  return requests;
}

IoResult IoScheduler::run_job(Job& job) {
  IoResult result;
  const RetryPolicy& retry = config_.retry;

  const auto deadline_passed = [&] {
    if (retry.deadline_seconds <= 0.0) return false;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - job.submitted_at;
    return elapsed.count() > retry.deadline_seconds;
  };

  // Fail fast while the error budget is spent: completing the request with
  // ok=false immediately (no device traffic, no retries) keeps a dying
  // device from stalling every in-flight consumer at full retry cost.
  if (error_budget_exhausted()) {
    result.message = "scheduled read rejected: error budget exhausted";
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++budget_rejected_;
      ++failures_;
    }
    if (obs::enabled()) {
      obs_budget_rejected_->add(1);
      obs_failures_->add(1);
    }
    return result;
  }
  if (deadline_passed()) {
    result.message = "scheduled read deadline expired before first attempt";
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++deadline_expired_;
      ++failures_;
    }
    if (obs::enabled()) {
      obs_deadline_expired_->add(1);
      obs_failures_->add(1);
    }
    return result;
  }

  for (int attempt = 1; attempt <= retry.max_attempts; ++attempt) {
    result.attempts = attempt;
    try {
      result.requests = execute(job);
      result.ok = true;
      return result;
    } catch (...) {
      result.error = std::current_exception();
      try {
        std::rethrow_exception(result.error);
      } catch (const std::exception& e) {
        result.message = e.what();
      } catch (...) {
        result.message = "non-standard exception from device read";
      }
    }
    if (attempt == retry.max_attempts) break;
    // Exponential backoff before the re-issue; give up early if it would
    // carry the request past its deadline.
    const double backoff = retry.backoff_seconds(attempt);
    if (backoff > 0.0)
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    if (deadline_passed()) {
      result.message = "scheduled read deadline expired after " +
                       std::to_string(attempt) + " attempt(s): " +
                       result.message;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++deadline_expired_;
        ++failures_;
      }
      if (obs::enabled()) {
        obs_deadline_expired_->add(1);
        obs_failures_->add(1);
      }
      return result;
    }
    job.file->record_retry();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++retries_;
    }
    if (obs::enabled()) obs_retries_->add(1);
  }

  // Retries exhausted: charge the error budget.
  result.message = "scheduled read failed after " +
                   std::to_string(result.attempts) + " attempt(s): " +
                   result.message;
  failed_requests_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++failures_;
  }
  if (obs::enabled()) obs_failures_->add(1);
  return result;
}

void IoScheduler::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      // On shutdown keep draining: in-flight requests must complete.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_service_;
    }
    const bool tracked = obs::enabled();
    std::chrono::steady_clock::time_point service_start;
    if (tracked) {
      service_start = std::chrono::steady_clock::now();
      obs_queue_wait_us_->record(static_cast<std::uint64_t>(
          std::chrono::duration<double>(service_start - job.submitted_at)
              .count() *
          1e6));
    }
    const IoResult result = run_job(job);
    if (tracked) {
      obs_service_us_->record(static_cast<std::uint64_t>(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        service_start)
              .count() *
          1e6));
      obs_completed_->add(1);
    }
    if (job.callback) {
      job.callback(result);
    } else {
      job.promise.set_value(result);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_service_;
      ++completed_;
    }
    idle_cv_.notify_all();
  }
}

void IoScheduler::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_service_ == 0; });
}

bool IoScheduler::error_budget_exhausted() const noexcept {
  return failed_requests_.load(std::memory_order_relaxed) >=
         config_.error_budget;
}

void IoScheduler::reset_error_budget() noexcept {
  failed_requests_.store(0, std::memory_order_relaxed);
}

std::size_t IoScheduler::pending() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() + in_service_;
}

IoSchedulerStats IoScheduler::stats() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  IoSchedulerStats s;
  s.submitted = submitted_;
  s.completed = completed_;
  s.peak_pending = peak_pending_;
  s.retries = retries_;
  s.failures = failures_;
  s.deadline_expired = deadline_expired_;
  s.budget_rejected = budget_rejected_;
  return s;
}

}  // namespace sembfs
