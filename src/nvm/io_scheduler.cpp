#include "nvm/io_scheduler.hpp"

#include <algorithm>

#include "nvm/chunk_cache.hpp"
#include "util/contracts.hpp"

namespace sembfs {

IoScheduler::IoScheduler(std::size_t queue_depth) {
  SEMBFS_EXPECTS(queue_depth >= 1 && queue_depth <= 1024);
  workers_.reserve(queue_depth);
  for (std::size_t i = 0; i < queue_depth; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

IoScheduler::~IoScheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // Workers drain the queue before exiting, so no promise is left dangling.
  SEMBFS_ASSERT(queue_.empty() && in_service_ == 0);
}

std::future<std::uint64_t> IoScheduler::submit_read(
    NvmBackingFile& file, std::uint64_t offset, std::span<std::byte> dst,
    ChunkCache* cache, std::uint64_t max_miss_request_bytes) {
  Job job;
  job.file = &file;
  job.offset = offset;
  job.dst = dst;
  job.cache = cache;
  job.max_miss_request_bytes = max_miss_request_bytes;
  std::future<std::uint64_t> future = job.promise.get_future();
  enqueue(std::move(job));
  return future;
}

void IoScheduler::submit_read(
    NvmBackingFile& file, std::uint64_t offset, std::span<std::byte> dst,
    std::function<void(std::uint64_t, std::exception_ptr)> done,
    ChunkCache* cache, std::uint64_t max_miss_request_bytes) {
  SEMBFS_EXPECTS(done != nullptr);
  Job job;
  job.file = &file;
  job.offset = offset;
  job.dst = dst;
  job.cache = cache;
  job.max_miss_request_bytes = max_miss_request_bytes;
  job.callback = std::move(done);
  enqueue(std::move(job));
}

void IoScheduler::enqueue(Job job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SEMBFS_EXPECTS(!shutdown_);
    queue_.push_back(std::move(job));
    ++submitted_;
    peak_pending_ = std::max(peak_pending_, queue_.size() + in_service_);
  }
  work_cv_.notify_one();
}

std::uint64_t IoScheduler::execute(Job& job) {
  if (job.cache != nullptr)
    return job.cache->read(*job.file, job.offset, job.dst,
                           job.max_miss_request_bytes);
  job.file->read(job.offset, job.dst);
  return 1;
}

void IoScheduler::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      // On shutdown keep draining: in-flight requests must complete.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_service_;
    }
    std::uint64_t requests = 0;
    std::exception_ptr error;
    try {
      requests = execute(job);
    } catch (...) {
      error = std::current_exception();
    }
    if (job.callback) {
      job.callback(requests, error);
    } else if (error) {
      job.promise.set_exception(error);
    } else {
      job.promise.set_value(requests);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_service_;
      ++completed_;
    }
    idle_cv_.notify_all();
  }
}

void IoScheduler::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_service_ == 0; });
}

std::size_t IoScheduler::pending() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() + in_service_;
}

IoSchedulerStats IoScheduler::stats() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  IoSchedulerStats s;
  s.submitted = submitted_;
  s.completed = completed_;
  s.peak_pending = peak_pending_;
  return s;
}

}  // namespace sembfs
