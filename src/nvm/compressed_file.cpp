#include "nvm/compressed_file.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "nvm/chunk_checksums.hpp"
#include "nvm/varint.hpp"
#include "util/contracts.hpp"

namespace sembfs {

namespace {

// Build-time bulk writes go in large strides, mirroring the raw offload
// path: the chunk discipline only governs reads.
constexpr std::size_t kWriteStride = 1 << 20;

void write_strided(NvmBackingFile& file, std::uint64_t offset,
                   std::span<const std::byte> data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const std::size_t len = std::min(kWriteStride, data.size() - done);
    file.write(offset + done, data.subspan(done, len));
    done += len;
  }
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
}

}  // namespace

CompressedBlockFile::CompressedBlockFile(
    std::unique_ptr<NvmBackingFile> inner,
    std::span<const std::int64_t> values, std::uint32_t chunk_bytes)
    : inner_(std::move(inner)),
      chunk_bytes_(chunk_bytes),
      value_count_(values.size()),
      logical_bytes_(values.size() * sizeof(std::int64_t)),
      obs_raw_bytes_(&obs::metrics().counter("nvm.compressed.raw_bytes")),
      obs_encoded_bytes_(
          &obs::metrics().counter("nvm.compressed.encoded_bytes")),
      obs_decoded_chunks_(
          &obs::metrics().counter("nvm.compressed.decoded_chunks")),
      obs_checksum_failures_(
          &obs::metrics().counter("nvm.compressed.checksum_failures")),
      obs_refetches_(&obs::metrics().counter("nvm.compressed.refetches")),
      obs_decode_us_(&obs::metrics().histogram("nvm.compressed.decode_us")) {
  SEMBFS_EXPECTS(inner_ != nullptr);
  SEMBFS_EXPECTS(chunk_bytes_ > 0 && chunk_bytes_ % sizeof(std::int64_t) == 0);

  const std::uint64_t values_per_chunk = chunk_bytes_ / sizeof(std::int64_t);
  const std::uint64_t blobs =
      (value_count_ + values_per_chunk - 1) / values_per_chunk;

  // Encode every logical chunk independently so any chunk decodes without
  // its neighbors (the delta chain restarts at each chunk boundary).
  std::vector<std::byte> encoded;
  encoded.reserve(static_cast<std::size_t>(logical_bytes_ / 2));
  blob_offsets_.reserve(static_cast<std::size_t>(blobs) + 1);
  blob_lengths_.reserve(static_cast<std::size_t>(blobs));
  blob_crcs_.reserve(static_cast<std::size_t>(blobs));
  blob_offsets_.push_back(0);
  for (std::uint64_t b = 0; b < blobs; ++b) {
    const std::uint64_t first = b * values_per_chunk;
    const std::uint64_t count =
        std::min(values_per_chunk, value_count_ - first);
    const std::size_t blob_begin = encoded.size();
    encode_adjacency_block(
        values.subspan(static_cast<std::size_t>(first),
                       static_cast<std::size_t>(count)),
        encoded);
    const std::span<const std::byte> blob{encoded.data() + blob_begin,
                                          encoded.size() - blob_begin};
    blob_lengths_.push_back(static_cast<std::uint32_t>(blob.size()));
    blob_crcs_.push_back(ChunkChecksums::crc32(blob));
    blob_offsets_.push_back(encoded.size());
  }

  // Serialize header + directory; the on-device image is self-describing
  // (magic carries the format version) even though this PR always rebuilds
  // the directory from DRAM at offload time.
  std::vector<std::byte> head;
  head.reserve(kHeaderBytes + blob_lengths_.size() * 8);
  for (const char c : kMagic) head.push_back(static_cast<std::byte>(c));
  put_u32(head, static_cast<std::uint32_t>(ChunkFormat::kVarint));
  put_u32(head, chunk_bytes_);
  put_u64(head, value_count_);
  put_u64(head, blobs);
  put_u64(head, kHeaderBytes);  // directory offset
  blobs_offset_ = kHeaderBytes + blobs * 8;
  put_u64(head, blobs_offset_);
  SEMBFS_ASSERT(head.size() == kHeaderBytes);
  for (std::uint64_t b = 0; b < blobs; ++b) {
    put_u32(head, blob_lengths_[static_cast<std::size_t>(b)]);
    put_u32(head, blob_crcs_[static_cast<std::size_t>(b)]);
  }

  write_strided(*inner_, 0, head);
  write_strided(*inner_, blobs_offset_, encoded);
  encoded_bytes_ = blobs_offset_ + encoded.size();

  if (obs::enabled()) {
    obs_raw_bytes_->add(logical_bytes_);
    obs_encoded_bytes_->add(encoded_bytes_);
  }
}

std::uint64_t CompressedBlockFile::block_decoded_bytes(
    std::uint64_t block) const noexcept {
  const std::uint64_t begin = block * chunk_bytes_;
  return std::min<std::uint64_t>(chunk_bytes_, logical_bytes_ - begin);
}

void CompressedBlockFile::verify_blob(std::uint64_t block,
                                      std::span<std::byte> blob) {
  const auto i = static_cast<std::size_t>(block);
  if (ChunkChecksums::crc32(blob) == blob_crcs_[i]) return;
  // Detected device-side corruption (or a torn delivery): heal with
  // targeted per-blob re-reads before giving up, mirroring the raw path's
  // ChunkCache CRC heal.
  if (obs::enabled()) obs_checksum_failures_->add(1);
  const std::uint64_t device_offset = blobs_offset_ + blob_offsets_[i];
  for (int attempt = 0; attempt < max_refetches_; ++attempt) {
    inner_->record_retry();
    if (obs::enabled()) obs_refetches_->add(1);
    inner_->read(device_offset, blob);
    if (ChunkChecksums::crc32(blob) == blob_crcs_[i]) return;
    if (obs::enabled()) obs_checksum_failures_->add(1);
  }
  throw NvmIoError("compressed blob " + std::to_string(block) +
                   " failed checksum verification after " +
                   std::to_string(max_refetches_) + " re-fetch(es)");
}

void CompressedBlockFile::read(std::uint64_t offset,
                               std::span<std::byte> buffer) {
  SEMBFS_EXPECTS(offset + buffer.size() <= logical_bytes_);
  if (buffer.empty()) return;

  const std::uint64_t first = offset / chunk_bytes_;
  const std::uint64_t last = (offset + buffer.size() - 1) / chunk_bytes_;
  const std::uint64_t span_begin = blob_offsets_[static_cast<std::size_t>(first)];
  const std::uint64_t span_end =
      blob_offsets_[static_cast<std::size_t>(last) + 1];

  // One device request covers every blob the logical range touches — the
  // request carries encoded bytes, which is exactly the avgrq-sz /
  // bytes-per-edge saving this format exists for.
  std::vector<std::byte> encoded(
      static_cast<std::size_t>(span_end - span_begin));
  inner_->read(blobs_offset_ + span_begin, encoded);

  const bool tracked = obs::enabled();
  std::chrono::steady_clock::time_point decode_start;
  if (tracked) decode_start = std::chrono::steady_clock::now();

  std::vector<std::int64_t> decoded(chunk_bytes_ / sizeof(std::int64_t));
  for (std::uint64_t block = first; block <= last; ++block) {
    const auto i = static_cast<std::size_t>(block);
    const std::span<std::byte> blob{
        encoded.data() + (blob_offsets_[i] - span_begin), blob_lengths_[i]};
    verify_blob(block, blob);

    const std::uint64_t block_bytes = block_decoded_bytes(block);
    const std::uint64_t block_values = block_bytes / sizeof(std::int64_t);
    decode_adjacency_block(
        blob, std::span<std::int64_t>{decoded.data(),
                                      static_cast<std::size_t>(block_values)});

    // Copy the overlap of this decoded chunk with the requested range.
    const std::uint64_t block_begin = block * chunk_bytes_;
    const std::uint64_t copy_begin = std::max(block_begin, offset);
    const std::uint64_t copy_end =
        std::min(block_begin + block_bytes, offset + buffer.size());
    SEMBFS_ASSERT(copy_begin < copy_end);
    std::memcpy(
        buffer.data() + (copy_begin - offset),
        reinterpret_cast<const std::byte*>(decoded.data()) +
            (copy_begin - block_begin),
        static_cast<std::size_t>(copy_end - copy_begin));
  }

  if (tracked) {
    obs_decoded_chunks_->add(last - first + 1);
    obs_decode_us_->record(static_cast<std::uint64_t>(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      decode_start)
            .count() *
        1e6));
  }
}

void CompressedBlockFile::write(std::uint64_t /*offset*/,
                                std::span<const std::byte> /*buffer*/) {
  SEMBFS_EXPECTS(false && "CompressedBlockFile is sealed after build");
}

}  // namespace sembfs
