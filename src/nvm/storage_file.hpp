// RAII wrapper around a POSIX file descriptor with exact-length positional
// I/O. This is the only place in the library that touches raw fds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace sembfs {

class StorageFile {
 public:
  StorageFile() noexcept = default;
  ~StorageFile();

  StorageFile(const StorageFile&) = delete;
  StorageFile& operator=(const StorageFile&) = delete;
  StorageFile(StorageFile&& other) noexcept;
  StorageFile& operator=(StorageFile&& other) noexcept;

  /// Opens (creating/truncating) a file for read+write. Throws on failure.
  static StorageFile create(const std::string& path);
  /// Opens an existing file read-only. Throws on failure.
  static StorageFile open_readonly(const std::string& path);
  /// Opens an existing file read+write. Throws on failure.
  static StorageFile open_readwrite(const std::string& path);

  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Positional read of exactly buffer.size() bytes. Throws on short read.
  void pread_exact(std::uint64_t offset, std::span<std::byte> buffer) const;

  /// Positional write of exactly buffer.size() bytes. Throws on failure.
  void pwrite_exact(std::uint64_t offset,
                    std::span<const std::byte> buffer) const;

  /// Current file size in bytes.
  [[nodiscard]] std::uint64_t size() const;

  /// Grows/truncates the file to `size` bytes.
  void resize(std::uint64_t size) const;

  /// fsync(2).
  void sync() const;

  void close() noexcept;

 private:
  StorageFile(int fd, std::string path) noexcept
      : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
};

/// Removes a file if it exists; ignores errors (cleanup helper).
void remove_file_if_exists(const std::string& path) noexcept;

/// Creates a directory (and parents) if missing. Throws on failure.
void ensure_directory(const std::string& path);

/// Best-effort recursive removal of a directory tree (generation cleanup —
/// retired chunk generations under <workdir>/gen<k>). Ignores errors;
/// returns the number of filesystem entries removed.
std::uint64_t remove_directory_recursive(const std::string& path) noexcept;

}  // namespace sembfs
