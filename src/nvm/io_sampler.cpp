#include "nvm/io_sampler.hpp"

#include <algorithm>
#include <chrono>

#include "util/contracts.hpp"

namespace sembfs {

IoStatsSampler::IoStatsSampler(NvmDevice& device, double interval_seconds)
    : device_(&device), interval_seconds_(interval_seconds) {
  SEMBFS_EXPECTS(interval_seconds > 0.0);
}

IoStatsSampler::~IoStatsSampler() { stop(); }

void IoStatsSampler::start() {
  stop();
  samples_.clear();
  previous_ = device_->stats().snapshot();
  t_origin_ = previous_.elapsed_seconds;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { sampling_loop(); });
}

void IoStatsSampler::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  take_sample();  // close the final partial window
}

void IoStatsSampler::sampling_loop() {
  while (running_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(interval_seconds_));
    if (!running_.load(std::memory_order_acquire)) break;
    take_sample();
  }
}

void IoStatsSampler::take_sample() {
  const IoStatsSnapshot now = device_->stats().snapshot();
  if (now.requests < previous_.requests ||
      now.elapsed_seconds < previous_.elapsed_seconds) {
    // The device counters were reset behind our back (e.g. a benchmark
    // phase starting); re-baseline instead of emitting underflowed deltas.
    previous_ = now;
    t_origin_ = now.elapsed_seconds;
    return;
  }
  const double dt = now.elapsed_seconds - previous_.elapsed_seconds;
  if (dt <= 0.0) return;
  IoSample sample;
  sample.t_seconds = now.elapsed_seconds - t_origin_;
  sample.requests = now.requests - previous_.requests;
  sample.sectors = now.sectors - previous_.sectors;
  sample.avg_queue_length =
      (now.queue_integral - previous_.queue_integral) / dt;
  sample.avg_request_sectors =
      sample.requests > 0 ? static_cast<double>(sample.sectors) /
                                static_cast<double>(sample.requests)
                          : 0.0;
  samples_.push_back(sample);
  previous_ = now;
}

double IoStatsSampler::peak_queue_length() const noexcept {
  double peak = 0.0;
  for (const IoSample& s : samples_)
    peak = std::max(peak, s.avg_queue_length);
  return peak;
}

double IoStatsSampler::mean_request_sectors() const noexcept {
  std::uint64_t requests = 0;
  std::uint64_t sectors = 0;
  for (const IoSample& s : samples_) {
    requests += s.requests;
    sectors += s.sectors;
  }
  return requests > 0
             ? static_cast<double>(sectors) / static_cast<double>(requests)
             : 0.0;
}

}  // namespace sembfs
