// Asynchronous I/O scheduler for the simulated NVM devices.
//
// The seed read path issues synchronous read(2)-style requests inline on
// the BFS compute workers, so the device queue never holds more requests
// than there are compute threads touching the device at that instant — far
// from the avgqu-sz ~36-56 the paper measures (Figure 12), and with no
// overlap between edge processing and I/O. This scheduler provides the
// FlashGraph/libaio-style alternative: a pool of `queue_depth` background
// I/O workers that accept byte-range read requests and complete them via
// futures or callbacks. Compute threads post the next dequeue batch's
// merged ranges and keep processing already-fetched adjacencies while the
// device services the new requests, keeping the device queue full.
//
// Every request still flows through NvmDevice::submit_read, so IoStats'
// queue-length integral (Figure 12's avgqu-sz) and request-size counters
// (Figure 13's avgrq-sz) observe the deepened queue for real.
//
// Failure domain: requests complete with an IoResult VALUE — never by
// throwing across the worker-thread boundary. A failed attempt is retried
// with exponential backoff under the configured RetryPolicy; an optional
// per-request deadline bounds how long a request may be outstanding; and
// an error budget makes the scheduler fail fast (no device traffic) once
// too many requests have exhausted their retries, so a dying device does
// not stall a whole BFS level at full retry cost.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <limits>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "nvm/fault_plan.hpp"
#include "nvm/nvm_device.hpp"
#include "obs/metrics.hpp"

namespace sembfs {

class ChunkCache;

/// Completion value of one scheduled read. Errors are carried here as
/// values instead of being thrown across the worker boundary.
struct IoResult {
  bool ok = false;
  int attempts = 0;            ///< tries performed (0 = rejected/expired)
  std::uint64_t requests = 0;  ///< device requests of the successful try
  std::exception_ptr error;    ///< the last failure, when !ok
  std::string message;         ///< human-readable failure summary

  /// Convenience for call sites that want the old throwing behavior:
  /// returns `requests` on success, rethrows the stored error otherwise.
  std::uint64_t value_or_throw() const {
    if (ok) return requests;
    if (error) std::rethrow_exception(error);
    throw NvmIoError(message.empty() ? "scheduled read failed" : message);
  }
};

struct IoSchedulerConfig {
  RetryPolicy retry;
  /// Requests that may exhaust their retries before the scheduler starts
  /// failing new work fast (completing it with ok=false and no device
  /// traffic). Default: unbounded. reset_error_budget() re-opens the gate
  /// (the BFS calls it per level).
  std::uint64_t error_budget = std::numeric_limits<std::uint64_t>::max();

  bool operator==(const IoSchedulerConfig&) const = default;
};

/// Point-in-time view of the scheduler counters.
struct IoSchedulerStats {
  std::uint64_t submitted = 0;     ///< requests accepted
  std::uint64_t completed = 0;     ///< requests finished (incl. failed)
  std::uint64_t peak_pending = 0;  ///< max queued+in-service at any instant
  std::uint64_t retries = 0;       ///< re-issued attempts after a failure
  std::uint64_t failures = 0;      ///< requests completed with ok=false
  std::uint64_t deadline_expired = 0;  ///< failures due to the deadline
  std::uint64_t budget_rejected = 0;   ///< failed fast: budget exhausted
};

class IoScheduler {
 public:
  /// Spawns `queue_depth` background I/O workers; each keeps at most one
  /// request in service against a device, so the scheduler sustains up to
  /// `queue_depth` concurrent device requests.
  explicit IoScheduler(std::size_t queue_depth,
                       IoSchedulerConfig config = {});

  /// Drains every pending request (all futures/callbacks complete), then
  /// joins the workers.
  ~IoScheduler();

  IoScheduler(const IoScheduler&) = delete;
  IoScheduler& operator=(const IoScheduler&) = delete;

  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return workers_.size();
  }
  [[nodiscard]] const IoSchedulerConfig& config() const noexcept {
    return config_;
  }

  /// Posts one byte-range read of dst.size() bytes at `offset`. `dst` (and
  /// `file`/`cache`) must stay alive until the future resolves. The future
  /// yields an IoResult whose `requests` counts device requests issued by
  /// the successful attempt: 1 for a direct read, the miss count when
  /// routed through `cache` (with miss runs merged up to
  /// `max_miss_request_bytes`, 0 = strict per-chunk requests). The future
  /// never throws; failures arrive as ok=false.
  std::future<IoResult> submit_read(
      NvmBackingFile& file, std::uint64_t offset, std::span<std::byte> dst,
      ChunkCache* cache = nullptr, std::uint64_t max_miss_request_bytes = 0);

  /// Callback variant: `done(result)` runs on the I/O worker after the
  /// read finishes (successfully or not).
  void submit_read(
      NvmBackingFile& file, std::uint64_t offset, std::span<std::byte> dst,
      std::function<void(const IoResult&)> done, ChunkCache* cache = nullptr,
      std::uint64_t max_miss_request_bytes = 0);

  /// Blocks until every request submitted so far has completed.
  void drain();

  /// True once `error_budget` requests have failed since the last reset;
  /// new requests then complete immediately with ok=false.
  [[nodiscard]] bool error_budget_exhausted() const noexcept;
  /// Re-opens the error gate (called at the start of each BFS level).
  void reset_error_budget() noexcept;

  [[nodiscard]] std::size_t pending() const noexcept;
  [[nodiscard]] IoSchedulerStats stats() const noexcept;

 private:
  struct Job {
    NvmBackingFile* file = nullptr;
    std::uint64_t offset = 0;
    std::span<std::byte> dst;
    ChunkCache* cache = nullptr;
    std::uint64_t max_miss_request_bytes = 0;
    std::chrono::steady_clock::time_point submitted_at;
    std::promise<IoResult> promise;
    std::function<void(const IoResult&)> callback;
  };

  void enqueue(Job job);
  void worker_loop();
  /// One attempt: the actual device read. Throws on failure.
  static std::uint64_t execute(Job& job);
  /// The full retry/backoff/deadline/budget state machine for one job.
  IoResult run_job(Job& job);

  std::vector<std::thread> workers_;
  IoSchedulerConfig config_;

  // Observability handles (global registry; schedulers aggregate).
  obs::Histogram* obs_queue_wait_us_;
  obs::Histogram* obs_service_us_;
  obs::Counter* obs_completed_;
  obs::Counter* obs_retries_;
  obs::Counter* obs_failures_;
  obs::Counter* obs_deadline_expired_;
  obs::Counter* obs_budget_rejected_;

  std::atomic<std::uint64_t> failed_requests_{0};

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<Job> queue_;
  std::size_t in_service_ = 0;
  bool shutdown_ = false;

  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t peak_pending_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t deadline_expired_ = 0;
  std::uint64_t budget_rejected_ = 0;
};

}  // namespace sembfs
