// Asynchronous I/O scheduler for the simulated NVM devices.
//
// The seed read path issues synchronous read(2)-style requests inline on
// the BFS compute workers, so the device queue never holds more requests
// than there are compute threads touching the device at that instant — far
// from the avgqu-sz ~36-56 the paper measures (Figure 12), and with no
// overlap between edge processing and I/O. This scheduler provides the
// FlashGraph/libaio-style alternative: a pool of `queue_depth` background
// I/O workers that accept byte-range read requests and complete them via
// futures or callbacks. Compute threads post the next dequeue batch's
// merged ranges and keep processing already-fetched adjacencies while the
// device services the new requests, keeping the device queue full.
//
// Every request still flows through NvmDevice::submit, so IoStats'
// queue-length integral (Figure 12's avgqu-sz) and request-size counters
// (Figure 13's avgrq-sz) observe the deepened queue for real.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "nvm/nvm_device.hpp"

namespace sembfs {

class ChunkCache;

/// Point-in-time view of the scheduler counters.
struct IoSchedulerStats {
  std::uint64_t submitted = 0;     ///< requests accepted
  std::uint64_t completed = 0;     ///< requests finished (incl. failed)
  std::uint64_t peak_pending = 0;  ///< max queued+in-service at any instant
};

class IoScheduler {
 public:
  /// Spawns `queue_depth` background I/O workers; each keeps at most one
  /// request in service against a device, so the scheduler sustains up to
  /// `queue_depth` concurrent device requests.
  explicit IoScheduler(std::size_t queue_depth);

  /// Drains every pending request (all futures/callbacks complete), then
  /// joins the workers.
  ~IoScheduler();

  IoScheduler(const IoScheduler&) = delete;
  IoScheduler& operator=(const IoScheduler&) = delete;

  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return workers_.size();
  }

  /// Posts one byte-range read of dst.size() bytes at `offset`. `dst` (and
  /// `file`/`cache`) must stay alive until the future resolves. The future
  /// yields the number of device requests issued: 1 for a direct read, the
  /// miss count when routed through `cache` (with miss runs merged up to
  /// `max_miss_request_bytes`, 0 = strict per-chunk requests). Read errors
  /// surface as the future's exception.
  std::future<std::uint64_t> submit_read(
      NvmBackingFile& file, std::uint64_t offset, std::span<std::byte> dst,
      ChunkCache* cache = nullptr, std::uint64_t max_miss_request_bytes = 0);

  /// Callback variant: `done(requests, error)` runs on the I/O worker after
  /// the read finishes; `error` is non-null when the read threw.
  void submit_read(
      NvmBackingFile& file, std::uint64_t offset, std::span<std::byte> dst,
      std::function<void(std::uint64_t, std::exception_ptr)> done,
      ChunkCache* cache = nullptr, std::uint64_t max_miss_request_bytes = 0);

  /// Blocks until every request submitted so far has completed.
  void drain();

  [[nodiscard]] std::size_t pending() const noexcept;
  [[nodiscard]] IoSchedulerStats stats() const noexcept;

 private:
  struct Job {
    NvmBackingFile* file = nullptr;
    std::uint64_t offset = 0;
    std::span<std::byte> dst;
    ChunkCache* cache = nullptr;
    std::uint64_t max_miss_request_bytes = 0;
    std::promise<std::uint64_t> promise;
    std::function<void(std::uint64_t, std::exception_ptr)> callback;
  };

  void enqueue(Job job);
  void worker_loop();
  static std::uint64_t execute(Job& job);

  std::vector<std::thread> workers_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<Job> queue_;
  std::size_t in_service_ = 0;
  bool shutdown_ = false;

  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t peak_pending_ = 0;
};

}  // namespace sembfs
