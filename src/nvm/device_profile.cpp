#include "nvm/device_profile.hpp"

#include <stdexcept>

namespace sembfs {

DeviceProfile DeviceProfile::dram() {
  DeviceProfile p;
  p.name = "dram";
  p.read_latency_us = 0.0;
  p.read_bandwidth_bps = 0.0;
  p.channels = 64;
  return p;
}

DeviceProfile DeviceProfile::pcie_flash() {
  DeviceProfile p;
  p.name = "pcie_flash";
  p.read_latency_us = 68.0;        // ioDrive2 datasheet-class read latency
  p.read_bandwidth_bps = 1.4e9;    // ~1.4 GB/s sequential read
  p.channels = 32;                 // deep internal parallelism
  return p;
}

DeviceProfile DeviceProfile::sata_ssd() {
  DeviceProfile p;
  p.name = "sata_ssd";
  p.read_latency_us = 220.0;       // SATA round trip + NAND read
  p.read_bandwidth_bps = 2.7e8;    // ~270 MB/s sequential read
  p.channels = 8;                  // NCQ depth effectively limits service
  return p;
}

DeviceProfile DeviceProfile::by_name(const std::string& name) {
  if (name == "dram") return dram();
  if (name == "pcie_flash") return pcie_flash();
  if (name == "sata_ssd") return sata_ssd();
  throw std::invalid_argument("unknown device profile '" + name + "'");
}

}  // namespace sembfs
