// Bounded, sharded cache of chunk-aligned blocks over NVM-backed files.
//
// The semi-external BFS re-reads the forward graph's index and value files
// every top-down level, and Kronecker degree skew concentrates those reads
// on a small set of hub chunks: the 4 KiB blocks holding hub index entries
// and hub adjacency prefixes are touched at every level. Caching them in a
// small DRAM pool removes the repeat device requests without giving up the
// semi-external memory budget (the cache is bounded and far smaller than
// the offloaded graph).
//
// Design:
//  - Blocks are chunk-aligned and keyed by (backing file, chunk index), so
//    the cache granularity is exactly the paper's 4 KiB device-request
//    discipline (Section V-B-1).
//  - The table is sharded; each shard holds a fixed number of slots under
//    its own mutex and evicts with the clock (second-chance) policy — an
//    LRU approximation that needs no per-hit list splice, following the
//    FlashGraph/SAFS page-cache design.
//  - read() is a read-through operation: cached chunks are served from
//    DRAM, consecutive missing chunks are fetched from the device in merged
//    requests of at most `max_miss_request_bytes` and inserted.
//  - Files are assumed immutable while cached (the BFS read path never
//    writes the offloaded CSR); clear() drops everything if a caller does
//    rewrite a file.
//
// Hit/miss/eviction counters feed the Figure 11-13 analysis: every hit is
// one device request (and its queue residence) that no longer happens.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "nvm/chunk_checksums.hpp"
#include "nvm/nvm_device.hpp"
#include "obs/metrics.hpp"

namespace sembfs {

/// Point-in-time view of the cache counters.
struct ChunkCacheStats {
  std::uint64_t hits = 0;        ///< chunk lookups served from DRAM
  std::uint64_t misses = 0;      ///< chunk lookups that went to the device
  std::uint64_t evictions = 0;   ///< valid slots reclaimed by the clock
  std::uint64_t insertions = 0;  ///< chunks filled from the device
  std::uint64_t checksum_failures = 0;  ///< fetched chunks that failed CRC
  std::uint64_t refetches = 0;   ///< corrective single-chunk re-reads

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class ChunkCache {
 public:
  /// A cache of ~`capacity_bytes` of `chunk_bytes`-aligned blocks spread
  /// over `shard_count` independently locked shards. Capacity is rounded so
  /// every shard owns at least one slot.
  explicit ChunkCache(std::size_t capacity_bytes,
                      std::uint32_t chunk_bytes = 4096,
                      std::size_t shard_count = 16);

  ChunkCache(const ChunkCache&) = delete;
  ChunkCache& operator=(const ChunkCache&) = delete;

  [[nodiscard]] std::uint32_t chunk_bytes() const noexcept {
    return chunk_bytes_;
  }
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return capacity_bytes_;
  }
  [[nodiscard]] std::size_t slot_count() const noexcept;

  /// Read-through: fills `out` with file bytes [offset, offset+out.size()),
  /// serving cached chunks from DRAM and fetching missing ones from the
  /// device. Runs of consecutive missing chunks are fetched in single
  /// device requests of at most `max_miss_request_bytes` (0 = one request
  /// per chunk — the paper's strict 4 KiB read(2) discipline). Returns the
  /// number of device requests issued (0 on a full hit).
  std::uint64_t read(NvmBackingFile& file, std::uint64_t offset,
                     std::span<std::byte> out,
                     std::uint64_t max_miss_request_bytes = 0);

  /// Attaches a checksum registry (nullptr detaches). While attached,
  /// every chunk fetched from the device is verified before insertion; on
  /// a CRC mismatch the chunk alone is re-fetched up to `max_refetches`
  /// times (healing transient device corruption) and NvmIoError is thrown
  /// if it still mismatches (persistent backing-store damage). Chunks the
  /// registry does not know are delivered unverified. The registry must
  /// outlive the cache; set before reads begin.
  void set_checksums(const ChunkChecksums* checksums, int max_refetches = 1);
  [[nodiscard]] const ChunkChecksums* checksums() const noexcept {
    return checksums_;
  }

  [[nodiscard]] ChunkCacheStats stats() const noexcept;
  void reset_stats() noexcept;

  /// Drops every cached chunk (use after rewriting a cached file).
  void clear();

 private:
  struct Key {
    std::uintptr_t file = 0;
    std::uint64_t chunk = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      // splitmix64-style mix of the two words.
      std::uint64_t x = (static_cast<std::uint64_t>(k.file) * 0x9e3779b97f4a7c15ULL) ^ k.chunk;
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 27;
      return static_cast<std::size_t>(x * 0x94d049bb133111ebULL);
    }
  };
  struct Slot {
    Key key;
    bool valid = false;
    bool referenced = false;       // clock second-chance bit
    std::uint32_t length = 0;      // bytes valid (tail chunks may be short)
    std::unique_ptr<std::byte[]> data;
  };
  struct Shard {
    std::mutex mutex;
    std::unordered_map<Key, std::uint32_t, KeyHash> index;
    std::vector<Slot> slots;
    std::size_t hand = 0;          // clock hand
  };

  Shard& shard_of(const Key& key) noexcept;
  /// Copies a cached chunk into `dst` if present; marks it referenced.
  bool lookup(const Key& key, std::uint64_t skip, std::span<std::byte> dst);
  /// Inserts one chunk (evicting via the clock if the shard is full).
  void insert(const Key& key, std::span<const std::byte> chunk);
  /// Verifies one fetched chunk against the attached registry, re-fetching
  /// it from `file` on mismatch. Returns the (possibly replaced) chunk
  /// bytes — `refetch_buf` provides storage for the replacement — and adds
  /// re-fetch device requests to `requests`. Throws NvmIoError when the
  /// chunk still mismatches after max_refetches_ re-reads.
  std::span<const std::byte> verify_chunk(
      NvmBackingFile& file, std::uint64_t chunk_index,
      std::uint64_t chunk_begin, std::span<const std::byte> chunk,
      std::vector<std::byte>& refetch_buf, std::uint64_t& requests);

  std::uint32_t chunk_bytes_;
  std::size_t capacity_bytes_;
  const ChunkChecksums* checksums_ = nullptr;
  int max_refetches_ = 1;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> checksum_failures_{0};
  std::atomic<std::uint64_t> refetches_{0};

  // Observability handles mirroring the local counters into the global
  // registry (aggregated across caches), resolved once at construction.
  obs::Counter* obs_hits_;
  obs::Counter* obs_misses_;
  obs::Counter* obs_evictions_;
  obs::Counter* obs_insertions_;
  obs::Counter* obs_checksum_failures_;
  obs::Counter* obs_refetches_;
};

}  // namespace sembfs
