// iostat-equivalent statistics for a simulated device.
//
// Figures 12 and 13 of the paper plot iostat's avgqu-sz (average number of
// requests in the device queue, counting waiting + in-service) and
// avgrq-sz (average request size in 512-byte sectors) over the BFS run.
// The device calls on_arrival / on_completion around every request; the
// queue-length *time integral* gives exactly iostat's avgqu-sz without any
// sampling, and per-request sector counts give avgrq-sz.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>

namespace sembfs {

/// Immutable view of the counters at one point in time.
struct IoStatsSnapshot {
  std::uint64_t requests = 0;
  std::uint64_t bytes = 0;
  std::uint64_t sectors = 0;
  // Failure-domain counters (FaultPlan injections and recovery work).
  std::uint64_t read_errors = 0;     ///< injected read errors raised
  std::uint64_t short_reads = 0;     ///< injected tail-zeroed reads
  std::uint64_t corruptions = 0;     ///< injected flipped bytes
  std::uint64_t latency_spikes = 0;  ///< injected service-time spikes
  std::uint64_t retries = 0;         ///< re-issues recorded by retry layers
  double elapsed_seconds = 0.0;     ///< observation window length
  double busy_seconds = 0.0;        ///< summed service time
  double wait_seconds = 0.0;        ///< summed (queue + service) time
  double avg_queue_length = 0.0;    ///< iostat avgqu-sz
  double avg_request_sectors = 0.0; ///< iostat avgrq-sz
  double await_ms = 0.0;            ///< iostat await
  double iops = 0.0;
  /// Raw time integral of queue occupancy (queue-length-seconds); the
  /// difference of two snapshots' integrals divided by the elapsed delta
  /// is the windowed avgqu-sz — how iostat itself reports intervals.
  double queue_integral = 0.0;

  [[nodiscard]] double throughput_bps() const noexcept {
    return elapsed_seconds > 0.0
               ? static_cast<double>(bytes) / elapsed_seconds
               : 0.0;
  }

  /// Device bytes moved per edge of useful traversal work — the figure the
  /// compressed chunk format exists to shrink (8 B/neighbor raw vs the
  /// varint blobs). `edges` is whatever traversal total the caller tracks
  /// (e.g. summed BfsResult::teps_edge_count over the window).
  [[nodiscard]] double bytes_per_edge(std::uint64_t edges) const noexcept {
    return edges > 0 ? static_cast<double>(bytes) / static_cast<double>(edges)
                     : 0.0;
  }
};

class IoStats {
 public:
  explicit IoStats(std::uint32_t sector_bytes = 512);

  /// Restarts the observation window and zeroes all counters.
  void reset();

  /// Marks one request entering the device queue. Returns an arrival
  /// timestamp to pass to on_completion.
  std::chrono::steady_clock::time_point on_arrival();

  /// Marks the matching request leaving the device.
  /// `service_seconds` is the time the request held a device channel.
  void on_completion(std::chrono::steady_clock::time_point arrival,
                     std::uint64_t bytes, double service_seconds);

  // Failure-domain events. Injected faults are counted at decision time
  // (an erroring request never reaches on_arrival, see
  // FaultInjectionTest.StatsNotCorruptedByFailure); retries are recorded
  // by whichever recovery layer re-issues a request against this device.
  void on_read_error() noexcept;
  void on_short_read() noexcept;
  void on_corruption() noexcept;
  void on_latency_spike() noexcept;
  void on_retry() noexcept;
  [[nodiscard]] std::uint64_t retry_count() const noexcept;

  [[nodiscard]] IoStatsSnapshot snapshot() const;

  [[nodiscard]] std::uint64_t request_count() const;
  [[nodiscard]] std::uint64_t byte_count() const;
  /// Requests currently queued or in service (instantaneous queue depth —
  /// the congestion signal the serving cost model reads).
  [[nodiscard]] std::uint64_t in_flight() const;

 private:
  void advance_integral_locked(std::chrono::steady_clock::time_point now);

  // Fault/retry counters are atomics outside mutex_: they are touched on
  // the fault fast path (possibly before any queue accounting) and read
  // by monitoring threads.
  std::atomic<std::uint64_t> read_errors_{0};
  std::atomic<std::uint64_t> short_reads_{0};
  std::atomic<std::uint64_t> corruptions_{0};
  std::atomic<std::uint64_t> latency_spikes_{0};
  std::atomic<std::uint64_t> retries_{0};

  mutable std::mutex mutex_;
  std::uint32_t sector_bytes_;
  std::chrono::steady_clock::time_point window_start_;
  std::chrono::steady_clock::time_point last_event_;
  std::uint64_t in_flight_ = 0;
  double queue_integral_ = 0.0;  // sum of queue_len * dt
  std::uint64_t requests_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t sectors_ = 0;
  double busy_seconds_ = 0.0;
  double wait_seconds_ = 0.0;
};

}  // namespace sembfs
