#include "nvm/chunk_cache.hpp"

#include <algorithm>
#include <cstring>

#include "util/contracts.hpp"

namespace sembfs {

ChunkCache::ChunkCache(std::size_t capacity_bytes, std::uint32_t chunk_bytes,
                       std::size_t shard_count)
    : chunk_bytes_(chunk_bytes),
      capacity_bytes_(capacity_bytes),
      obs_hits_(&obs::metrics().counter("chunk_cache.hits")),
      obs_misses_(&obs::metrics().counter("chunk_cache.misses")),
      obs_evictions_(&obs::metrics().counter("chunk_cache.evictions")),
      obs_insertions_(&obs::metrics().counter("chunk_cache.insertions")),
      obs_checksum_failures_(
          &obs::metrics().counter("chunk_cache.checksum_failures")),
      obs_refetches_(&obs::metrics().counter("chunk_cache.refetches")) {
  SEMBFS_EXPECTS(chunk_bytes > 0);
  SEMBFS_EXPECTS(shard_count > 0);
  const std::size_t total_slots =
      std::max<std::size_t>(shard_count, capacity_bytes / chunk_bytes);
  const std::size_t per_shard =
      std::max<std::size_t>(1, total_slots / shard_count);
  shards_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->slots.resize(per_shard);
    shard->index.reserve(per_shard);
    shards_.push_back(std::move(shard));
  }
}

std::size_t ChunkCache::slot_count() const noexcept {
  return shards_.size() * shards_.front()->slots.size();
}

ChunkCache::Shard& ChunkCache::shard_of(const Key& key) noexcept {
  return *shards_[KeyHash{}(key) % shards_.size()];
}

bool ChunkCache::lookup(const Key& key, std::uint64_t skip,
                        std::span<std::byte> dst) {
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) return false;
  Slot& slot = shard.slots[it->second];
  SEMBFS_ASSERT(slot.valid && skip + dst.size() <= slot.length);
  std::memcpy(dst.data(), slot.data.get() + skip, dst.size());
  slot.referenced = true;
  return true;
}

void ChunkCache::insert(const Key& key, std::span<const std::byte> chunk) {
  SEMBFS_ASSERT(chunk.size() <= chunk_bytes_);
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.index.contains(key)) return;  // a concurrent miss beat us to it
  // Clock sweep: clear reference bits until an unreferenced victim appears.
  std::size_t victim = shard.hand;
  for (;;) {
    Slot& candidate = shard.slots[victim];
    if (!candidate.valid || !candidate.referenced) break;
    candidate.referenced = false;
    victim = (victim + 1) % shard.slots.size();
  }
  shard.hand = (victim + 1) % shard.slots.size();
  Slot& slot = shard.slots[victim];
  if (slot.valid) {
    shard.index.erase(slot.key);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) obs_evictions_->add(1);
  }
  if (slot.data == nullptr)
    slot.data = std::make_unique<std::byte[]>(chunk_bytes_);
  std::memcpy(slot.data.get(), chunk.data(), chunk.size());
  slot.key = key;
  slot.valid = true;
  slot.referenced = true;
  slot.length = static_cast<std::uint32_t>(chunk.size());
  shard.index[key] = static_cast<std::uint32_t>(victim);
  insertions_.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) obs_insertions_->add(1);
}

void ChunkCache::set_checksums(const ChunkChecksums* checksums,
                               int max_refetches) {
  SEMBFS_EXPECTS(checksums == nullptr ||
                 checksums->chunk_bytes() == chunk_bytes_);
  SEMBFS_EXPECTS(max_refetches >= 0);
  checksums_ = checksums;
  max_refetches_ = max_refetches;
}

std::span<const std::byte> ChunkCache::verify_chunk(
    NvmBackingFile& file, std::uint64_t chunk_index,
    std::uint64_t chunk_begin, std::span<const std::byte> chunk,
    std::vector<std::byte>& refetch_buf, std::uint64_t& requests) {
  const std::optional<std::uint32_t> want =
      checksums_->expected(file, chunk_index);
  if (!want.has_value()) return chunk;  // unrecorded chunk: trust it
  if (ChunkChecksums::crc32(chunk) == *want) return chunk;
  checksum_failures_.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) obs_checksum_failures_->add(1);
  // Corrective re-read of just this chunk. A transient device-injected
  // corruption heals here (the re-read consumes a fresh fault index); a
  // persistent flip in the backing store exhausts the budget and throws.
  for (int attempt = 0; attempt < max_refetches_; ++attempt) {
    refetch_buf.resize(chunk.size());
    file.read(chunk_begin, std::span<std::byte>{refetch_buf});
    ++requests;
    refetches_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) obs_refetches_->add(1);
    chunk = std::span<const std::byte>{refetch_buf};
    if (ChunkChecksums::crc32(chunk) == *want) return chunk;
    checksum_failures_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) obs_checksum_failures_->add(1);
  }
  throw NvmIoError("chunk checksum mismatch persists after " +
                   std::to_string(max_refetches_) +
                   " re-fetch(es): chunk #" + std::to_string(chunk_index) +
                   " at byte " + std::to_string(chunk_begin));
}

std::uint64_t ChunkCache::read(NvmBackingFile& file, std::uint64_t offset,
                               std::span<std::byte> out,
                               std::uint64_t max_miss_request_bytes) {
  if (out.empty()) return 0;
  const std::uint64_t cb = chunk_bytes_;
  const std::uint64_t file_size = file.size();
  SEMBFS_EXPECTS(offset + out.size() <= file_size);
  const std::uint64_t miss_cap =
      max_miss_request_bytes == 0 ? cb : std::max<std::uint64_t>(cb, max_miss_request_bytes);
  const std::uintptr_t file_id = reinterpret_cast<std::uintptr_t>(&file);

  const std::uint64_t first_chunk = offset / cb;
  const std::uint64_t last_chunk = (offset + out.size() - 1) / cb;

  // Pass 1: serve what we can from the cache, remember the missing chunks.
  std::uint64_t local_hits = 0;
  std::vector<std::uint64_t> missing;
  for (std::uint64_t c = first_chunk; c <= last_chunk; ++c) {
    const std::uint64_t chunk_begin = c * cb;
    const std::uint64_t copy_begin = std::max(chunk_begin, offset);
    const std::uint64_t copy_end =
        std::min(chunk_begin + cb, offset + out.size());
    if (lookup(Key{file_id, c}, copy_begin - chunk_begin,
               out.subspan(copy_begin - offset, copy_end - copy_begin))) {
      ++local_hits;
    } else {
      missing.push_back(c);
    }
  }
  hits_.fetch_add(local_hits, std::memory_order_relaxed);
  misses_.fetch_add(missing.size(), std::memory_order_relaxed);
  if (obs::enabled()) {
    obs_hits_->add(local_hits);
    obs_misses_->add(missing.size());
  }
  if (missing.empty()) return 0;

  // Pass 2: fetch runs of consecutive missing chunks, each run in device
  // requests of at most `miss_cap` bytes, then insert and deliver.
  std::uint64_t requests = 0;
  std::vector<std::byte> staging;
  std::vector<std::byte> refetch_buf;
  std::size_t i = 0;
  while (i < missing.size()) {
    std::size_t j = i + 1;
    while (j < missing.size() && missing[j] == missing[j - 1] + 1 &&
           (missing[j] + 1 - missing[i]) * cb <= miss_cap) {
      ++j;
    }
    const std::uint64_t run_begin = missing[i] * cb;
    const std::uint64_t run_end =
        std::min((missing[j - 1] + 1) * cb, file_size);
    staging.resize(run_end - run_begin);
    file.read(run_begin, std::span<std::byte>{staging});
    ++requests;
    for (std::size_t k = i; k < j; ++k) {
      const std::uint64_t chunk_begin = missing[k] * cb;
      const std::uint64_t chunk_end = std::min(chunk_begin + cb, file_size);
      std::span<const std::byte> chunk{
          staging.data() + (chunk_begin - run_begin), chunk_end - chunk_begin};
      if (checksums_ != nullptr) {
        chunk = verify_chunk(file, missing[k], chunk_begin, chunk,
                             refetch_buf, requests);
      }
      insert(Key{file_id, missing[k]}, chunk);
      const std::uint64_t copy_begin = std::max(chunk_begin, offset);
      const std::uint64_t copy_end =
          std::min(chunk_end, offset + out.size());
      std::memcpy(out.data() + (copy_begin - offset),
                  chunk.data() + (copy_begin - chunk_begin),
                  copy_end - copy_begin);
    }
    i = j;
  }
  return requests;
}

ChunkCacheStats ChunkCache::stats() const noexcept {
  ChunkCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.checksum_failures = checksum_failures_.load(std::memory_order_relaxed);
  s.refetches = refetches_.load(std::memory_order_relaxed);
  return s;
}

void ChunkCache::reset_stats() noexcept {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  insertions_.store(0, std::memory_order_relaxed);
  checksum_failures_.store(0, std::memory_order_relaxed);
  refetches_.store(0, std::memory_order_relaxed);
}

void ChunkCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->index.clear();
    for (Slot& slot : shard->slots) {
      slot.valid = false;
      slot.referenced = false;
    }
    shard->hand = 0;
  }
}

}  // namespace sembfs
