// Compressed block store: a virtual NvmBackingFile that presents a plain
// little-endian int64 array while keeping delta/zigzag/varint-packed blobs
// on the device underneath.
//
// Layout. The logical array is cut into fixed LOGICAL chunks of
// `chunk_bytes` decoded bytes (the same 4 KiB discipline every reader
// above this layer already obeys); each logical chunk is encoded
// independently (delta chain restarts per chunk, so chunks decode without
// their neighbors) into one variable-size blob. The backing file holds
//
//   header (48 B, versioned magic "SEMBFSC1")
//   directory: one {encoded_length u32, crc32 u32} per blob
//   blobs, concatenated
//
// and a DRAM copy of the directory (offsets prefix-summed at build time)
// makes every logical byte range resolvable to one contiguous device span.
//
// Read path. read(offset, n) maps the logical range onto its blob span,
// fetches that span as ONE device request (this is where the
// bytes-per-edge saving lands in IoStats/avgrq-sz), CRC-verifies every
// covered blob against the build-time directory — a mismatch triggers up
// to `max_refetches` corrective per-blob re-reads before NvmIoError — and
// decodes the covered chunks into the caller's buffer. Callers are
// format-oblivious: ExternalArray / ChunkReader / ChunkCache sit on top
// unchanged, and when a ChunkCache is attached above, decoding happens
// exactly once per chunk at cache-fill.
//
// Thread-safety: the directory is immutable after construction and every
// read uses local scratch, so concurrent read() calls are safe (the inner
// file serializes at the device model as usual). write() is a contract
// violation — the store is sealed at build time.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "nvm/chunk_format.hpp"
#include "nvm/nvm_device.hpp"
#include "obs/metrics.hpp"

namespace sembfs {

class CompressedBlockFile final : public NvmBackingFile {
 public:
  /// On-device format version tag ("SEMBFSC" + version digit).
  static constexpr char kMagic[8] = {'S', 'E', 'M', 'B', 'F', 'S', 'C', '1'};
  static constexpr std::size_t kHeaderBytes = 48;

  /// Encodes `values` and writes header + directory + blobs into `inner`
  /// (which should be freshly created; existing content is overwritten).
  /// `chunk_bytes` must be a positive multiple of sizeof(int64).
  CompressedBlockFile(std::unique_ptr<NvmBackingFile> inner,
                      std::span<const std::int64_t> values,
                      std::uint32_t chunk_bytes);

  /// Logical (decoded) size: value_count * 8. This is the size every layer
  /// above sees; the device footprint is encoded_byte_size().
  [[nodiscard]] std::uint64_t size() const override { return logical_bytes_; }

  /// Reads decoded bytes [offset, offset + buffer.size()) as one device
  /// request over the covering blob span. Throws NvmIoError when a blob
  /// stays corrupt after the corrective re-fetches or the stream is
  /// malformed.
  void read(std::uint64_t offset, std::span<std::byte> buffer) override;

  /// The store is sealed at build time; post-build writes are a bug.
  void write(std::uint64_t offset,
             std::span<const std::byte> buffer) override;

  void record_retry() noexcept override { inner_->record_retry(); }

  [[nodiscard]] ChunkFormat format() const noexcept {
    return ChunkFormat::kVarint;
  }
  [[nodiscard]] std::uint32_t chunk_bytes() const noexcept {
    return chunk_bytes_;
  }
  /// Decoded payload bytes (what the raw format would have shipped).
  [[nodiscard]] std::uint64_t raw_byte_size() const noexcept {
    return logical_bytes_;
  }
  /// Device bytes actually stored: header + directory + encoded blobs.
  [[nodiscard]] std::uint64_t encoded_byte_size() const noexcept {
    return encoded_bytes_;
  }
  [[nodiscard]] std::size_t blob_count() const noexcept {
    return blob_lengths_.size();
  }
  [[nodiscard]] NvmBackingFile& inner() noexcept { return *inner_; }

  /// Corrective re-reads allowed per CRC-failing blob (default 1, matching
  /// ChunkCache verification; 0 turns healing off).
  void set_max_refetches(int refetches) noexcept {
    max_refetches_ = refetches;
  }
  [[nodiscard]] int max_refetches() const noexcept { return max_refetches_; }

 private:
  /// Fetches + verifies + heals the blob at `block`, whose bytes sit at
  /// `blob` (already read). Throws NvmIoError when still corrupt.
  void verify_blob(std::uint64_t block, std::span<std::byte> blob);
  /// Decoded byte length of logical chunk `block` (tail may be short).
  [[nodiscard]] std::uint64_t block_decoded_bytes(
      std::uint64_t block) const noexcept;

  std::unique_ptr<NvmBackingFile> inner_;
  std::uint32_t chunk_bytes_ = 4096;
  std::uint64_t value_count_ = 0;
  std::uint64_t logical_bytes_ = 0;
  std::uint64_t encoded_bytes_ = 0;
  std::uint64_t blobs_offset_ = 0;  ///< device offset of the blob region
  /// Prefix sums of encoded blob lengths (size blob_count()+1): blob i
  /// occupies device bytes [blobs_offset_+offsets[i], blobs_offset_+offsets[i+1]).
  std::vector<std::uint64_t> blob_offsets_;
  std::vector<std::uint32_t> blob_lengths_;
  std::vector<std::uint32_t> blob_crcs_;
  int max_refetches_ = 1;

  // Observability handles (shared global registry; see
  // docs/OBSERVABILITY.md for the nvm.compressed.* catalogue).
  obs::Counter* obs_raw_bytes_;
  obs::Counter* obs_encoded_bytes_;
  obs::Counter* obs_decoded_chunks_;
  obs::Counter* obs_checksum_failures_;
  obs::Counter* obs_refetches_;
  obs::Histogram* obs_decode_us_;
};

}  // namespace sembfs
