// Windowed iostat sampling: a background thread snapshots a device's
// counters on a fixed interval and reports per-window deltas — exactly
// what `iostat <interval>` prints, and exactly what the paper's Figures 12
// and 13 plot over the 64-iteration benchmark run.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "nvm/nvm_device.hpp"

namespace sembfs {

/// One sampling window (the delta between consecutive snapshots).
struct IoSample {
  double t_seconds = 0.0;           ///< window end, relative to start()
  std::uint64_t requests = 0;       ///< requests completed in the window
  std::uint64_t sectors = 0;
  double avg_queue_length = 0.0;    ///< windowed avgqu-sz
  double avg_request_sectors = 0.0; ///< windowed avgrq-sz
};

class IoStatsSampler {
 public:
  /// Samples `device` every `interval_seconds` once started.
  IoStatsSampler(NvmDevice& device, double interval_seconds = 0.05);
  ~IoStatsSampler();

  IoStatsSampler(const IoStatsSampler&) = delete;
  IoStatsSampler& operator=(const IoStatsSampler&) = delete;

  /// Begins sampling (clears any previous series).
  void start();
  /// Stops the sampling thread and closes the final window.
  void stop();

  [[nodiscard]] const std::vector<IoSample>& samples() const noexcept {
    return samples_;
  }

  /// Largest windowed avgqu-sz observed (the paper quotes peak queues).
  [[nodiscard]] double peak_queue_length() const noexcept;
  /// Request-weighted mean of the windowed avgrq-sz values.
  [[nodiscard]] double mean_request_sectors() const noexcept;

 private:
  void sampling_loop();
  void take_sample();

  NvmDevice* device_;
  double interval_seconds_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::vector<IoSample> samples_;
  IoStatsSnapshot previous_;
  double t_origin_ = 0.0;
};

}  // namespace sembfs
