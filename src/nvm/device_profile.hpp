// Device performance models for the simulated NVM layer.
//
// The paper evaluates three storage configurations (Table I):
//   DRAM-only        — everything resident in memory
//   DRAM+PCIeFlash   — FusionIO ioDrive2 (PCIe-attached flash)
//   DRAM+SSD         — Intel SSD 320 (SATA)
// We do not have those devices, so NvmDevice applies a simple open-queue
// service model parameterized per device class: each read occupies one of
// `channels` service slots for `read_latency + bytes/bandwidth` (scaled by
// `time_scale`), and excess requests wait. Parameters are set so the
// *ordering* and rough ratios of the paper hold: PCIe flash has ~4x lower
// latency and ~5x higher bandwidth and much deeper internal parallelism
// than the SATA SSD. Figures 11-13 are driven entirely by this model.
#pragma once

#include <cstdint>
#include <string>

namespace sembfs {

struct DeviceProfile {
  std::string name = "dram";
  /// Fixed per-request service latency, microseconds. 0 disables the model.
  double read_latency_us = 0.0;
  /// Sustained read bandwidth per channel, bytes/second. 0 = infinite.
  double read_bandwidth_bps = 0.0;
  /// Independent service channels (internal device parallelism).
  unsigned channels = 1;
  /// Global multiplier on simulated service time. Benches use < 1 to keep
  /// run time down (documented in EXPERIMENTS.md); ratios are unaffected.
  double time_scale = 1.0;
  /// iostat sector size for avgrq-sz accounting.
  std::uint32_t sector_bytes = 512;

  /// Service time (seconds) this device needs for one `bytes`-sized read.
  [[nodiscard]] double service_seconds(std::uint64_t bytes) const noexcept {
    double s = read_latency_us * 1e-6;
    if (read_bandwidth_bps > 0.0)
      s += static_cast<double>(bytes) / read_bandwidth_bps;
    return s * time_scale;
  }

  [[nodiscard]] bool is_instant() const noexcept {
    return read_latency_us <= 0.0 && read_bandwidth_bps <= 0.0;
  }

  /// No artificial delay — models data already in DRAM (or page cache).
  static DeviceProfile dram();
  /// FusionIO ioDrive2-class PCIe flash: ~68 us, ~1.4 GB/s, deep parallelism.
  static DeviceProfile pcie_flash();
  /// Intel SSD 320-class SATA SSD: ~220 us, ~270 MB/s, shallow parallelism.
  static DeviceProfile sata_ssd();
  /// Looks up a profile by name ("dram", "pcie_flash", "sata_ssd");
  /// throws std::invalid_argument on unknown names.
  static DeviceProfile by_name(const std::string& name);
};

}  // namespace sembfs
