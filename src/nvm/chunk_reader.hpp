// 4 KiB-chunked range reads, as the paper specifies:
//   "our current implementation reads a continuous region for a vertex at
//    4KB chunks by using POSIX read(2) API" (Section V-B-1).
//
// A range [offset, offset+len) is split into device requests that each lie
// inside ONE `chunk_bytes`-aligned device chunk: the first request runs
// only up to the next chunk boundary, subsequent requests are
// boundary-aligned. A range starting mid-chunk therefore never issues a
// request straddling two device chunks — straddles would under-count the
// device requests iostat sees and break the avgrq-sz / avgqu-sz
// equivalence with the paper's traces.
//
// An optional ChunkCache (same chunk geometry) serves repeated chunks from
// DRAM; only misses reach the device.
#pragma once

#include <cstdint>
#include <span>

#include "nvm/nvm_device.hpp"

namespace sembfs {

class ChunkCache;

class ChunkReader {
 public:
  explicit ChunkReader(NvmBackingFile& file, std::uint32_t chunk_bytes = 4096,
                       ChunkCache* cache = nullptr) noexcept
      : file_(&file), chunk_bytes_(chunk_bytes), cache_(cache) {}

  [[nodiscard]] std::uint32_t chunk_bytes() const noexcept {
    return chunk_bytes_;
  }

  /// Attaches (or detaches, with nullptr) a chunk cache. The cache must use
  /// the same chunk size so cached blocks align with device chunks.
  void set_cache(ChunkCache* cache) noexcept;
  [[nodiscard]] ChunkCache* cache() const noexcept { return cache_; }

  /// Reads buffer.size() bytes from `offset`; every device request stays
  /// within one aligned chunk. Returns the number of device requests issued
  /// (cache hits issue none).
  std::uint64_t read_range(std::uint64_t offset, std::span<std::byte> buffer);

 private:
  NvmBackingFile* file_;
  std::uint32_t chunk_bytes_;
  ChunkCache* cache_;
};

}  // namespace sembfs
