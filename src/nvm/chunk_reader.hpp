// 4 KiB-chunked range reads, as the paper specifies:
//   "our current implementation reads a continuous region for a vertex at
//    4KB chunks by using POSIX read(2) API" (Section V-B-1).
//
// A range [offset, offset+len) is split into successive device requests of
// at most `chunk_bytes` (default 4096); each chunk is one simulated device
// request, which is what makes avgrq-sz / avgqu-sz behave like the paper's
// iostat traces.
#pragma once

#include <cstdint>
#include <span>

#include "nvm/nvm_device.hpp"

namespace sembfs {

class ChunkReader {
 public:
  explicit ChunkReader(NvmBackingFile& file, std::uint32_t chunk_bytes = 4096) noexcept
      : file_(&file), chunk_bytes_(chunk_bytes) {}

  [[nodiscard]] std::uint32_t chunk_bytes() const noexcept {
    return chunk_bytes_;
  }

  /// Reads buffer.size() bytes from `offset` in <= chunk_bytes requests.
  /// Returns the number of device requests issued.
  std::uint64_t read_range(std::uint64_t offset, std::span<std::byte> buffer);

 private:
  NvmBackingFile* file_;
  std::uint32_t chunk_bytes_;
};

}  // namespace sembfs
