#include "nvm/nvm_device.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/contracts.hpp"
#include "util/timer.hpp"

namespace sembfs {

NvmDevice::NvmDevice(DeviceProfile profile)
    : profile_(std::move(profile)),
      stats_(profile_.sector_bytes),
      obs_queue_wait_us_(&obs::metrics().histogram("nvm.queue_wait_us")),
      obs_service_us_(&obs::metrics().histogram("nvm.service_us")),
      obs_requests_(&obs::metrics().counter("nvm.requests")),
      obs_bytes_(&obs::metrics().counter("nvm.bytes")),
      obs_read_errors_(&obs::metrics().counter("nvm.read_errors")),
      obs_short_reads_(&obs::metrics().counter("nvm.short_reads")),
      obs_corruptions_(&obs::metrics().counter("nvm.corruptions")),
      obs_latency_spikes_(&obs::metrics().counter("nvm.latency_spikes")),
      obs_queue_depth_(&obs::metrics().gauge("nvm.queue_depth")) {}

namespace {
std::uint64_t to_us(double seconds) noexcept {
  return seconds <= 0.0 ? 0 : static_cast<std::uint64_t>(seconds * 1e6);
}
}  // namespace

void NvmDevice::record_request_metrics(double wait_seconds,
                                       double service_seconds,
                                       std::uint64_t bytes) noexcept {
  obs_queue_wait_us_->record(to_us(wait_seconds));
  obs_service_us_->record(to_us(service_seconds));
  obs_requests_->add(1);
  obs_bytes_->add(bytes);
}

void NvmDevice::set_fault_plan(const FaultPlan& plan) {
  {
    const std::lock_guard<std::mutex> lock{fault_mutex_};
    plan_ = plan;
  }
  fault_sequence_.store(0, std::memory_order_relaxed);
  // Release: a submitter that observes the armed flag sees the new plan.
  faults_armed_.store(plan.enabled(), std::memory_order_release);
}

void NvmDevice::clear_fault_plan() {
  faults_armed_.store(false, std::memory_order_release);
  const std::lock_guard<std::mutex> lock{fault_mutex_};
  plan_ = FaultPlan{};
}

FaultPlan NvmDevice::fault_plan() const {
  const std::lock_guard<std::mutex> lock{fault_mutex_};
  return plan_;
}

FaultDecision NvmDevice::next_read_fault() {
  FaultPlan plan;
  {
    const std::lock_guard<std::mutex> lock{fault_mutex_};
    plan = plan_;
  }
  // The sequence index — not a decrementing countdown — is what makes the
  // one-shot fail_after_requests race-free: exactly one request observes
  // index n-1, no matter how many threads submit concurrently.
  const std::uint64_t index =
      fault_sequence_.fetch_add(1, std::memory_order_relaxed);
  FaultDecision fault = plan.decide(index);
  const bool tracked = obs::enabled();
  if (fault.read_error) {
    stats_.on_read_error();
    if (tracked) obs_read_errors_->add(1);
    throw NvmIoError("injected read error (FaultPlan) at device read #" +
                     std::to_string(index));
  }
  if (fault.short_read) {
    stats_.on_short_read();
    if (tracked) obs_short_reads_->add(1);
  }
  if (fault.corrupt) {
    stats_.on_corruption();
    if (tracked) obs_corruptions_->add(1);
  }
  if (fault.latency_spike) {
    stats_.on_latency_spike();
    if (tracked) obs_latency_spikes_->add(1);
  }
  return fault;
}

void NvmDevice::apply_buffer_faults(const FaultDecision& fault,
                                    std::span<std::byte> dst) {
  if (dst.empty()) return;
  if (fault.short_read) {
    // Model a short read: the tail of the transfer never arrives. The cut
    // point is deterministic per request index; at least one byte is lost.
    const auto cut = static_cast<std::ptrdiff_t>(fault.entropy % dst.size());
    std::fill(dst.begin() + cut, dst.end(), std::byte{0});
  }
  if (fault.corrupt) {
    const auto pos =
        static_cast<std::size_t>((fault.entropy >> 17) % dst.size());
    dst[pos] ^= std::byte{0x40};
  }
}

void NvmDevice::acquire_channel() {
  std::unique_lock<std::mutex> lock{channel_mutex_};
  channel_cv_.wait(lock,
                   [this] { return busy_channels_ < profile_.channels; });
  ++busy_channels_;
}

void NvmDevice::release_channel() {
  {
    const std::lock_guard<std::mutex> lock{channel_mutex_};
    SEMBFS_ASSERT(busy_channels_ > 0);
    --busy_channels_;
  }
  channel_cv_.notify_one();
}

double NvmDevice::serve(std::uint64_t bytes, double extra_seconds,
                        const std::function<void()>& io) {
  Timer t;
  io();
  const double target = profile_.service_seconds(bytes) + extra_seconds;
  const double remaining = target - t.seconds();
  if (remaining > 0.0) {
    // sleep_for granularity (~50 us on Linux) is coarse for sub-100 us
    // service times; spin below that threshold, sleep above it.
    if (remaining < 100e-6) {
      const double deadline = t.seconds() + remaining;
      while (t.seconds() < deadline) {
        // busy spin
      }
    } else {
      std::this_thread::sleep_for(std::chrono::duration<double>(remaining));
    }
  }
  return t.seconds();
}

NvmFile::NvmFile(std::shared_ptr<NvmDevice> device, const std::string& path)
    : device_(std::move(device)), file_(StorageFile::create(path)) {
  SEMBFS_EXPECTS(device_ != nullptr);
}

NvmFile::NvmFile(std::shared_ptr<NvmDevice> device, StorageFile file)
    : device_(std::move(device)), file_(std::move(file)) {
  SEMBFS_EXPECTS(device_ != nullptr);
  append_offset_ = file_.size();
}

void NvmFile::read(std::uint64_t offset, std::span<std::byte> buffer) {
  device_->submit_read(buffer,
                       [&] { file_.pread_exact(offset, buffer); });
}

void NvmFile::write(std::uint64_t offset,
                    std::span<const std::byte> buffer) {
  device_->submit(buffer.size(),
                  [&] { file_.pwrite_exact(offset, buffer); });
}

std::uint64_t NvmFile::append(std::span<const std::byte> buffer) {
  std::uint64_t offset = 0;
  {
    const std::lock_guard<std::mutex> lock{append_mutex_};
    offset = append_offset_;
    append_offset_ += buffer.size();
  }
  write(offset, buffer);
  return offset;
}

}  // namespace sembfs
