#include "nvm/nvm_device.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "util/contracts.hpp"
#include "util/timer.hpp"

namespace sembfs {

NvmDevice::NvmDevice(DeviceProfile profile)
    : profile_(std::move(profile)), stats_(profile_.sector_bytes) {}

void NvmDevice::check_injected_failure() {
  // Fast path: no failure armed.
  if (fail_countdown_.load(std::memory_order_relaxed) < 0) return;
  const std::int64_t remaining =
      fail_countdown_.fetch_sub(1, std::memory_order_acq_rel);
  if (remaining == 1)
    throw std::runtime_error(
        "injected device failure (NvmDevice::inject_failure_after)");
}

void NvmDevice::acquire_channel() {
  std::unique_lock<std::mutex> lock{channel_mutex_};
  channel_cv_.wait(lock,
                   [this] { return busy_channels_ < profile_.channels; });
  ++busy_channels_;
}

void NvmDevice::release_channel() {
  {
    const std::lock_guard<std::mutex> lock{channel_mutex_};
    SEMBFS_ASSERT(busy_channels_ > 0);
    --busy_channels_;
  }
  channel_cv_.notify_one();
}

double NvmDevice::serve(std::uint64_t bytes,
                        const std::function<void()>& io) {
  Timer t;
  io();
  const double target = profile_.service_seconds(bytes);
  const double remaining = target - t.seconds();
  if (remaining > 0.0) {
    // sleep_for granularity (~50 us on Linux) is coarse for sub-100 us
    // service times; spin below that threshold, sleep above it.
    if (remaining < 100e-6) {
      const double deadline = t.seconds() + remaining;
      while (t.seconds() < deadline) {
        // busy spin
      }
    } else {
      std::this_thread::sleep_for(std::chrono::duration<double>(remaining));
    }
  }
  return t.seconds();
}

NvmFile::NvmFile(std::shared_ptr<NvmDevice> device, const std::string& path)
    : device_(std::move(device)), file_(StorageFile::create(path)) {
  SEMBFS_EXPECTS(device_ != nullptr);
}

NvmFile::NvmFile(std::shared_ptr<NvmDevice> device, StorageFile file)
    : device_(std::move(device)), file_(std::move(file)) {
  SEMBFS_EXPECTS(device_ != nullptr);
  append_offset_ = file_.size();
}

void NvmFile::read(std::uint64_t offset, std::span<std::byte> buffer) {
  device_->submit(buffer.size(),
                  [&] { file_.pread_exact(offset, buffer); });
}

void NvmFile::write(std::uint64_t offset,
                    std::span<const std::byte> buffer) {
  device_->submit(buffer.size(),
                  [&] { file_.pwrite_exact(offset, buffer); });
}

std::uint64_t NvmFile::append(std::span<const std::byte> buffer) {
  std::uint64_t offset = 0;
  {
    const std::lock_guard<std::mutex> lock{append_mutex_};
    offset = append_offset_;
    append_offset_ += buffer.size();
  }
  write(offset, buffer);
  return offset;
}

}  // namespace sembfs
