// Stripe set: one logical byte store spread round-robin across several
// simulated NVM devices (the paper's machine carried multiple flash cards;
// "heavily equipped with NVM devices"). Striping multiplies available
// service channels, so queue waits (Figure 12's avgqu-sz) drop roughly
// with the device count while per-request latency is unchanged.
//
// Layout: logical stripe i (stripe_bytes wide) lives on device i % D at
// file offset (i / D) * stripe_bytes. A read spanning k stripes issues k
// device requests (on distinct devices whenever k <= D), which is exactly
// how a software RAID-0 behaves.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nvm/nvm_device.hpp"

namespace sembfs {

class StripedNvmFile final : public NvmBackingFile {
 public:
  /// Creates one backing file per device under `path_stem` (suffixes
  /// ".stripe<k>"). stripe_bytes must be a power of two.
  StripedNvmFile(std::vector<std::shared_ptr<NvmDevice>> devices,
                 const std::string& path_stem,
                 std::uint32_t stripe_bytes = 4096);

  [[nodiscard]] std::size_t device_count() const noexcept {
    return stripes_.size();
  }
  [[nodiscard]] std::uint32_t stripe_bytes() const noexcept {
    return stripe_bytes_;
  }

  void read(std::uint64_t offset, std::span<std::byte> buffer) override;
  void write(std::uint64_t offset,
             std::span<const std::byte> buffer) override;
  [[nodiscard]] std::uint64_t size() const override;
  /// Recorded once per stripe device: which stripes a retried logical
  /// read actually re-touches is not tracked, and a uniform count keeps
  /// the per-device retry counters comparable.
  void record_retry() noexcept override {
    for (auto& stripe : stripes_) stripe->record_retry();
  }

 private:
  /// Invokes op(file_index, file_offset, lo, len) for each stripe-piece of
  /// [offset, offset+length).
  template <typename Op>
  void for_each_piece(std::uint64_t offset, std::uint64_t length, Op&& op);

  std::vector<std::unique_ptr<NvmFile>> stripes_;
  std::uint32_t stripe_bytes_;
  std::uint64_t logical_size_ = 0;
};

}  // namespace sembfs
