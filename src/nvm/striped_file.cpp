#include "nvm/striped_file.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace sembfs {

StripedNvmFile::StripedNvmFile(
    std::vector<std::shared_ptr<NvmDevice>> devices,
    const std::string& path_stem, std::uint32_t stripe_bytes)
    : stripe_bytes_(stripe_bytes) {
  SEMBFS_EXPECTS(!devices.empty());
  SEMBFS_EXPECTS(stripe_bytes != 0 &&
                 (stripe_bytes & (stripe_bytes - 1)) == 0);
  stripes_.reserve(devices.size());
  for (std::size_t k = 0; k < devices.size(); ++k) {
    SEMBFS_EXPECTS(devices[k] != nullptr);
    stripes_.push_back(std::make_unique<NvmFile>(
        devices[k], path_stem + ".stripe" + std::to_string(k)));
  }
}

template <typename Op>
void StripedNvmFile::for_each_piece(std::uint64_t offset,
                                    std::uint64_t length, Op&& op) {
  const std::size_t d = stripes_.size();
  std::uint64_t done = 0;
  while (done < length) {
    const std::uint64_t logical = offset + done;
    const std::uint64_t stripe_index = logical / stripe_bytes_;
    const std::uint64_t within = logical % stripe_bytes_;
    const std::uint64_t piece =
        std::min<std::uint64_t>(stripe_bytes_ - within, length - done);
    const std::size_t file_index =
        static_cast<std::size_t>(stripe_index % d);
    const std::uint64_t file_offset =
        (stripe_index / d) * stripe_bytes_ + within;
    op(file_index, file_offset, done, piece);
    done += piece;
  }
}

void StripedNvmFile::read(std::uint64_t offset,
                          std::span<std::byte> buffer) {
  for_each_piece(offset, buffer.size(),
                 [&](std::size_t file, std::uint64_t file_offset,
                     std::uint64_t lo, std::uint64_t len) {
                   stripes_[file]->read(file_offset,
                                        buffer.subspan(lo, len));
                 });
}

void StripedNvmFile::write(std::uint64_t offset,
                           std::span<const std::byte> buffer) {
  for_each_piece(offset, buffer.size(),
                 [&](std::size_t file, std::uint64_t file_offset,
                     std::uint64_t lo, std::uint64_t len) {
                   stripes_[file]->write(file_offset,
                                         buffer.subspan(lo, len));
                 });
  logical_size_ = std::max(logical_size_, offset + buffer.size());
}

std::uint64_t StripedNvmFile::size() const { return logical_size_; }

}  // namespace sembfs
