// Typed fixed-stride array stored in a file on a simulated NVM device.
//
// The external CSR stores its `index` array and `value` array as files
// ("array file" and "value file" in the paper); ExternalArray<T> is the
// typed view both use. Elements are read through a ChunkReader so every
// access obeys the 4 KiB-chunk discipline.
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "nvm/chunk_reader.hpp"
#include "nvm/nvm_device.hpp"
#include "util/contracts.hpp"

namespace sembfs {

template <typename T>
class ExternalArray {
 public:
  static_assert(std::is_trivially_copyable_v<T>,
                "ExternalArray requires a POD-like element type");

  /// Views `count` elements starting at byte `base_offset` of `file`.
  ExternalArray(NvmBackingFile& file, std::uint64_t base_offset, std::uint64_t count,
                std::uint32_t chunk_bytes = 4096)
      : file_(&file),
        reader_(file, chunk_bytes),
        base_offset_(base_offset),
        count_(count) {}

  [[nodiscard]] std::uint64_t size() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t byte_size() const noexcept {
    return count_ * sizeof(T);
  }
  [[nodiscard]] std::uint64_t base_offset() const noexcept {
    return base_offset_;
  }
  [[nodiscard]] NvmBackingFile& file() noexcept { return *file_; }

  /// Routes chunked reads through `cache` (nullptr detaches). The cache's
  /// chunk size must match this array's. Attach only while the backing
  /// file is no longer being written — cached chunks are never invalidated
  /// by write().
  void set_cache(ChunkCache* cache) noexcept { reader_.set_cache(cache); }
  [[nodiscard]] ChunkCache* cache() const noexcept { return reader_.cache(); }

  /// Reads elements [first, first+out.size()) into `out`.
  /// Returns the number of device requests issued.
  std::uint64_t read(std::uint64_t first, std::span<T> out) {
    SEMBFS_EXPECTS(first + out.size() <= count_);
    if (out.empty()) return 0;
    return reader_.read_range(base_offset_ + first * sizeof(T),
                              std::as_writable_bytes(out));
  }

  /// Reads one element (a single device request).
  T read_one(std::uint64_t index) {
    T value{};
    read(index, std::span<T>{&value, 1});
    return value;
  }

  /// Bulk-writes elements [first, first+in.size()) (construction path —
  /// one request, not chunked: the paper only chunks the BFS read path).
  void write(std::uint64_t first, std::span<const T> in) {
    SEMBFS_EXPECTS(first + in.size() <= count_);
    if (in.empty()) return;
    file_->write(base_offset_ + first * sizeof(T), std::as_bytes(in));
  }

  /// Convenience: reads the whole array into a vector (tests/validation).
  std::vector<T> read_all() {
    std::vector<T> out(count_);
    if (count_ != 0) read(0, std::span<T>{out});
    return out;
  }

 private:
  NvmBackingFile* file_;
  ChunkReader reader_;
  std::uint64_t base_offset_;
  std::uint64_t count_;
};

}  // namespace sembfs
