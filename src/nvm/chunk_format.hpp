// On-NVM adjacency chunk formats.
//
// kRaw is the seed layout: value chunks hold little-endian 8-byte Vertex
// entries exactly as they sit in DRAM. kVarint is the compressed layout
// introduced with the bytes-per-edge work (ROADMAP item 4): each logical
// 4 KiB chunk of the value array is delta/zigzag/varint-packed into a
// variable-size blob on the device and decoded back to plain Vertex spans
// at ChunkCache-fill time, so every reader above the backing-file layer is
// format-oblivious.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace sembfs {

enum class ChunkFormat : std::uint32_t {
  kRaw = 0,     ///< 8-byte Vertex entries, byte-for-byte the DRAM layout
  kVarint = 1,  ///< per-chunk delta + zigzag + varint blobs (see
                ///< CompressedBlockFile)
};

[[nodiscard]] constexpr std::string_view to_string(ChunkFormat f) noexcept {
  switch (f) {
    case ChunkFormat::kRaw:
      return "raw";
    case ChunkFormat::kVarint:
      return "varint";
  }
  return "unknown";
}

/// Parses "raw" / "varint"; nullopt for anything else.
[[nodiscard]] inline std::optional<ChunkFormat> parse_chunk_format(
    std::string_view name) noexcept {
  if (name == "raw") return ChunkFormat::kRaw;
  if (name == "varint") return ChunkFormat::kVarint;
  return std::nullopt;
}

/// Validates a serialized format code (e.g. a file-header flags word).
[[nodiscard]] inline std::optional<ChunkFormat> parse_chunk_format(
    std::uint32_t code) noexcept {
  switch (code) {
    case static_cast<std::uint32_t>(ChunkFormat::kRaw):
      return ChunkFormat::kRaw;
    case static_cast<std::uint32_t>(ChunkFormat::kVarint):
      return ChunkFormat::kVarint;
    default:
      return std::nullopt;
  }
}

}  // namespace sembfs
