#include "nvm/chunk_reader.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace sembfs {

std::uint64_t ChunkReader::read_range(std::uint64_t offset,
                                      std::span<std::byte> buffer) {
  SEMBFS_EXPECTS(chunk_bytes_ > 0);
  std::uint64_t requests = 0;
  std::size_t done = 0;
  while (done < buffer.size()) {
    const std::size_t len =
        std::min<std::size_t>(chunk_bytes_, buffer.size() - done);
    file_->read(offset + done, buffer.subspan(done, len));
    done += len;
    ++requests;
  }
  return requests;
}

}  // namespace sembfs
