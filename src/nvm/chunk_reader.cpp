#include "nvm/chunk_reader.hpp"

#include <algorithm>

#include "nvm/chunk_cache.hpp"
#include "util/contracts.hpp"

namespace sembfs {

void ChunkReader::set_cache(ChunkCache* cache) noexcept {
  SEMBFS_EXPECTS(cache == nullptr || cache->chunk_bytes() == chunk_bytes_);
  cache_ = cache;
}

std::uint64_t ChunkReader::read_range(std::uint64_t offset,
                                      std::span<std::byte> buffer) {
  SEMBFS_EXPECTS(chunk_bytes_ > 0);
  if (buffer.empty()) return 0;
  if (cache_ != nullptr) {
    // Read-through; misses are fetched one aligned chunk per request
    // (max_miss_request_bytes = 0), preserving the 4 KiB discipline.
    return cache_->read(*file_, offset, buffer, 0);
  }
  std::uint64_t requests = 0;
  std::size_t done = 0;
  while (done < buffer.size()) {
    const std::uint64_t pos = offset + done;
    // Never cross the next chunk boundary: the first request of a
    // mid-chunk range is truncated at the boundary so every request maps
    // onto exactly one device chunk.
    const auto to_boundary =
        static_cast<std::size_t>(chunk_bytes_ - pos % chunk_bytes_);
    const std::size_t len =
        std::min<std::size_t>(to_boundary, buffer.size() - done);
    file_->read(pos, buffer.subspan(done, len));
    done += len;
    ++requests;
  }
  return requests;
}

}  // namespace sembfs
