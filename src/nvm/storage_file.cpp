#include "nvm/storage_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "util/contracts.hpp"

namespace sembfs {

namespace {
[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  throw std::runtime_error(what + " '" + path +
                           "': " + std::strerror(errno));
}
}  // namespace

StorageFile::~StorageFile() { close(); }

StorageFile::StorageFile(StorageFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

StorageFile& StorageFile::operator=(StorageFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

StorageFile StorageFile::create(const std::string& path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
  if (fd < 0) throw_errno("cannot create", path);
  return StorageFile{fd, path};
}

StorageFile StorageFile::open_readonly(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw_errno("cannot open", path);
  return StorageFile{fd, path};
}

StorageFile StorageFile::open_readwrite(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) throw_errno("cannot open", path);
  return StorageFile{fd, path};
}

void StorageFile::pread_exact(std::uint64_t offset,
                              std::span<std::byte> buffer) const {
  SEMBFS_EXPECTS(is_open());
  std::size_t done = 0;
  while (done < buffer.size()) {
    const ssize_t got =
        ::pread(fd_, buffer.data() + done, buffer.size() - done,
                static_cast<off_t>(offset + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      throw_errno("pread failed on", path_);
    }
    if (got == 0)
      throw std::runtime_error("short read (EOF) on '" + path_ + "'");
    done += static_cast<std::size_t>(got);
  }
}

void StorageFile::pwrite_exact(std::uint64_t offset,
                               std::span<const std::byte> buffer) const {
  SEMBFS_EXPECTS(is_open());
  std::size_t done = 0;
  while (done < buffer.size()) {
    const ssize_t put =
        ::pwrite(fd_, buffer.data() + done, buffer.size() - done,
                 static_cast<off_t>(offset + done));
    if (put < 0) {
      if (errno == EINTR) continue;
      throw_errno("pwrite failed on", path_);
    }
    done += static_cast<std::size_t>(put);
  }
}

std::uint64_t StorageFile::size() const {
  SEMBFS_EXPECTS(is_open());
  struct stat st{};
  if (::fstat(fd_, &st) != 0) throw_errno("fstat failed on", path_);
  return static_cast<std::uint64_t>(st.st_size);
}

void StorageFile::resize(std::uint64_t new_size) const {
  SEMBFS_EXPECTS(is_open());
  if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0)
    throw_errno("ftruncate failed on", path_);
}

void StorageFile::sync() const {
  SEMBFS_EXPECTS(is_open());
  if (::fsync(fd_) != 0) throw_errno("fsync failed on", path_);
}

void StorageFile::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void remove_file_if_exists(const std::string& path) noexcept {
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

void ensure_directory(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec && !std::filesystem::is_directory(path))
    throw std::runtime_error("cannot create directory '" + path +
                             "': " + ec.message());
}

std::uint64_t remove_directory_recursive(const std::string& path) noexcept {
  std::error_code ec;
  const std::uintmax_t removed = std::filesystem::remove_all(path, ec);
  if (ec) return 0;
  return static_cast<std::uint64_t>(removed);
}

}  // namespace sembfs
