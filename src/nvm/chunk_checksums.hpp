// Per-chunk CRC32 registry for offloaded NVM files.
//
// Checksums are recorded once, at offload time, directly from the
// in-memory source buffers (no device reads), keyed by (backing file,
// chunk index) — the same key the ChunkCache uses. The cache verifies
// every chunk it fetches from the device against this registry, which is
// what turns a FaultPlan bit-corruption (or a real torn write) from
// silently wrong BFS output into a detected, re-fetchable event.
//
// Tail chunks are hashed over their actual length, matching the fetch
// granularity (min(chunk boundary, file size)).
//
// Thread-safety: record_buffer() may run concurrently with expected()
// (all accesses take the registry mutex), but in practice recording
// happens during graph construction, strictly before any BFS reads.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>

namespace sembfs {

class NvmBackingFile;

class ChunkChecksums {
 public:
  explicit ChunkChecksums(std::uint32_t chunk_bytes = 4096);

  ChunkChecksums(const ChunkChecksums&) = delete;
  ChunkChecksums& operator=(const ChunkChecksums&) = delete;

  [[nodiscard]] std::uint32_t chunk_bytes() const noexcept {
    return chunk_bytes_;
  }

  /// Records checksums for `data` as it will land in `file` starting at
  /// byte `offset` (must be chunk-aligned). The final partial chunk, if
  /// any, is hashed over its partial length.
  void record_buffer(const NvmBackingFile& file, std::uint64_t offset,
                     std::span<const std::byte> data);

  /// The recorded checksum for (file, chunk), or nullopt if that chunk
  /// was never recorded (verification is skipped for unknown chunks).
  [[nodiscard]] std::optional<std::uint32_t> expected(
      const NvmBackingFile& file, std::uint64_t chunk) const;

  [[nodiscard]] std::size_t chunk_count() const;

  /// CRC-32 (IEEE 802.3 polynomial, table-driven).
  [[nodiscard]] static std::uint32_t crc32(std::span<const std::byte> data);

 private:
  struct Key {
    std::uintptr_t file = 0;
    std::uint64_t chunk = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t x =
          (static_cast<std::uint64_t>(k.file) * 0x9e3779b97f4a7c15ULL) ^
          k.chunk;
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 27;
      return static_cast<std::size_t>(x * 0x94d049bb133111ebULL);
    }
  };

  std::uint32_t chunk_bytes_;
  mutable std::mutex mutex_;
  std::unordered_map<Key, std::uint32_t, KeyHash> map_;
};

}  // namespace sembfs
