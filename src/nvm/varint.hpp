// Delta + zigzag + LEB128 varint codec for adjacency blocks.
//
// An adjacency block is a run of int64 values (the graph layer's Vertex).
// The encoder emits the first value zigzag-encoded against zero and every
// following value as
// the zigzag of its delta to the predecessor; each mapped value is packed
// as a little-endian base-128 varint (7 payload bits per byte, high bit =
// continuation). Sorted neighbor runs (relabel.cpp sorts post-relabel)
// produce small non-negative deltas — typically 1-2 bytes instead of 8 —
// while unsorted runs stay correct through the zigzag mapping, just with a
// weaker ratio.
//
// The decoder is bounds-checked end to end: a truncated stream, a varint
// running past 10 bytes, or a value count mismatch throws NvmIoError
// rather than reading out of bounds — corrupted device bytes that slip
// past the blob CRC must be contained, not ingested.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "nvm/fault_plan.hpp"

namespace sembfs {

/// Maps a signed value onto the unsigned line so small magnitudes of either
/// sign get short varints: 0,-1,1,-2,2,... -> 0,1,2,3,4,...
[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t u) noexcept {
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

/// Longest varint an int64 can need: ceil(64 / 7) bytes.
inline constexpr std::size_t kMaxVarintBytes = 10;

/// Appends `u` as a little-endian base-128 varint.
inline void append_varint(std::vector<std::byte>& out, std::uint64_t u) {
  while (u >= 0x80) {
    out.push_back(static_cast<std::byte>((u & 0x7f) | 0x80));
    u >>= 7;
  }
  out.push_back(static_cast<std::byte>(u));
}

/// Decodes one varint at `pos`, advancing it. Throws NvmIoError on a
/// truncated or overlong (> 10 byte) encoding.
inline std::uint64_t decode_varint(std::span<const std::byte> data,
                                   std::size_t& pos) {
  std::uint64_t u = 0;
  unsigned shift = 0;
  for (std::size_t n = 0; n < kMaxVarintBytes; ++n) {
    if (pos >= data.size())
      throw NvmIoError("varint decode: truncated stream");
    const auto byte = static_cast<std::uint8_t>(data[pos++]);
    u |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return u;
    shift += 7;
  }
  throw NvmIoError("varint decode: encoding longer than 10 bytes");
}

/// Appends the delta/zigzag/varint encoding of `values` to `out`.
inline void encode_adjacency_block(std::span<const std::int64_t> values,
                                   std::vector<std::byte>& out) {
  std::int64_t previous = 0;
  for (const std::int64_t v : values) {
    append_varint(out, zigzag_encode(v - previous));
    previous = v;
  }
}

/// Decodes exactly out.size() values from `data`, which must hold exactly
/// that many varints (no trailing bytes). Throws NvmIoError on malformed
/// input.
inline void decode_adjacency_block(std::span<const std::byte> data,
                                   std::span<std::int64_t> out) {
  std::size_t pos = 0;
  std::int64_t previous = 0;
  for (std::int64_t& v : out) {
    previous += zigzag_decode(decode_varint(data, pos));
    v = previous;
  }
  if (pos != data.size())
    throw NvmIoError("varint decode: trailing bytes after block");
}

}  // namespace sembfs
