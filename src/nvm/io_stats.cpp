#include "nvm/io_stats.hpp"

namespace sembfs {

using clock = std::chrono::steady_clock;

IoStats::IoStats(std::uint32_t sector_bytes) : sector_bytes_(sector_bytes) {
  reset();
}

void IoStats::reset() {
  read_errors_.store(0, std::memory_order_relaxed);
  short_reads_.store(0, std::memory_order_relaxed);
  corruptions_.store(0, std::memory_order_relaxed);
  latency_spikes_.store(0, std::memory_order_relaxed);
  retries_.store(0, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock{mutex_};
  window_start_ = last_event_ = clock::now();
  in_flight_ = 0;
  queue_integral_ = 0.0;
  requests_ = 0;
  bytes_ = 0;
  sectors_ = 0;
  busy_seconds_ = 0.0;
  wait_seconds_ = 0.0;
}

void IoStats::advance_integral_locked(clock::time_point now) {
  const double dt = std::chrono::duration<double>(now - last_event_).count();
  if (dt > 0.0) {
    queue_integral_ += static_cast<double>(in_flight_) * dt;
    last_event_ = now;
  }
}

clock::time_point IoStats::on_arrival() {
  const auto now = clock::now();
  const std::lock_guard<std::mutex> lock{mutex_};
  advance_integral_locked(now);
  ++in_flight_;
  return now;
}

void IoStats::on_completion(clock::time_point arrival, std::uint64_t bytes,
                            double service_seconds) {
  const auto now = clock::now();
  const std::lock_guard<std::mutex> lock{mutex_};
  advance_integral_locked(now);
  if (in_flight_ > 0) --in_flight_;
  ++requests_;
  bytes_ += bytes;
  sectors_ += (bytes + sector_bytes_ - 1) / sector_bytes_;
  busy_seconds_ += service_seconds;
  wait_seconds_ += std::chrono::duration<double>(now - arrival).count();
}

void IoStats::on_read_error() noexcept {
  read_errors_.fetch_add(1, std::memory_order_relaxed);
}
void IoStats::on_short_read() noexcept {
  short_reads_.fetch_add(1, std::memory_order_relaxed);
}
void IoStats::on_corruption() noexcept {
  corruptions_.fetch_add(1, std::memory_order_relaxed);
}
void IoStats::on_latency_spike() noexcept {
  latency_spikes_.fetch_add(1, std::memory_order_relaxed);
}
void IoStats::on_retry() noexcept {
  retries_.fetch_add(1, std::memory_order_relaxed);
}
std::uint64_t IoStats::retry_count() const noexcept {
  return retries_.load(std::memory_order_relaxed);
}

IoStatsSnapshot IoStats::snapshot() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  IoStatsSnapshot s;
  const auto now = clock::now();
  const double dt = std::chrono::duration<double>(now - last_event_).count();
  const double integral =
      queue_integral_ + static_cast<double>(in_flight_) * (dt > 0.0 ? dt : 0.0);
  s.requests = requests_;
  s.bytes = bytes_;
  s.sectors = sectors_;
  s.read_errors = read_errors_.load(std::memory_order_relaxed);
  s.short_reads = short_reads_.load(std::memory_order_relaxed);
  s.corruptions = corruptions_.load(std::memory_order_relaxed);
  s.latency_spikes = latency_spikes_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.queue_integral = integral;
  s.elapsed_seconds =
      std::chrono::duration<double>(now - window_start_).count();
  s.busy_seconds = busy_seconds_;
  s.wait_seconds = wait_seconds_;
  if (s.elapsed_seconds > 0.0)
    s.avg_queue_length = integral / s.elapsed_seconds;
  if (requests_ > 0) {
    s.avg_request_sectors =
        static_cast<double>(sectors_) / static_cast<double>(requests_);
    s.await_ms = wait_seconds_ / static_cast<double>(requests_) * 1e3;
  }
  if (s.elapsed_seconds > 0.0)
    s.iops = static_cast<double>(requests_) / s.elapsed_seconds;
  return s;
}

std::uint64_t IoStats::request_count() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return requests_;
}

std::uint64_t IoStats::byte_count() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return bytes_;
}

std::uint64_t IoStats::in_flight() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return in_flight_;
}

}  // namespace sembfs
