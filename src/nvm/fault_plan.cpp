#include "nvm/fault_plan.hpp"

#include <algorithm>
#include <cmath>

#include "util/options.hpp"
#include "util/prng.hpp"

namespace sembfs {

FaultDecision FaultPlan::decide(std::uint64_t request_index) const {
  FaultDecision d;
  d.request_index = request_index;
  if (fail_after_requests != 0 &&
      request_index + 1 == fail_after_requests) {
    d.read_error = true;
    return d;
  }
  if (read_error_rate <= 0.0 && short_read_rate <= 0.0 &&
      corruption_rate <= 0.0 && latency_spike_rate <= 0.0) {
    return d;
  }
  // One generator per index, draws in fixed order: the decision is a pure
  // function of (seed, index), independent of which thread asks.
  Xoroshiro128 rng{derive_seed(seed, request_index)};
  d.read_error = rng.next_double() < read_error_rate;
  d.short_read = rng.next_double() < short_read_rate;
  d.corrupt = rng.next_double() < corruption_rate;
  d.latency_spike = rng.next_double() < latency_spike_rate;
  if (d.latency_spike) d.latency_spike_us = latency_spike_us;
  d.entropy = rng.next();
  return d;
}

void FaultPlan::register_options(OptionParser& options) {
  options.add_int("fault-seed", 1, "fault schedule seed");
  options.add_double("fault-read-error-rate", 0.0,
                     "per-read probability of an injected read error");
  options.add_double("fault-short-read-rate", 0.0,
                     "per-read probability of a short (tail-zeroed) read");
  options.add_double("fault-corruption-rate", 0.0,
                     "per-read probability of a single flipped byte");
  options.add_double("fault-latency-spike-rate", 0.0,
                     "per-read probability of a service-time spike");
  options.add_double("fault-latency-spike-us", 1000.0,
                     "extra service time per latency spike (microseconds)");
}

FaultPlan FaultPlan::from_options(const OptionParser& options) {
  FaultPlan plan;
  plan.seed = static_cast<std::uint64_t>(options.get_int("fault-seed"));
  plan.read_error_rate = options.get_double("fault-read-error-rate");
  plan.short_read_rate = options.get_double("fault-short-read-rate");
  plan.corruption_rate = options.get_double("fault-corruption-rate");
  plan.latency_spike_rate = options.get_double("fault-latency-spike-rate");
  plan.latency_spike_us = options.get_double("fault-latency-spike-us");
  return plan;
}

double RetryPolicy::backoff_seconds(int retry) const noexcept {
  if (retry < 1) return 0.0;
  const double us =
      initial_backoff_us * std::pow(backoff_multiplier, retry - 1);
  return std::min(us, max_backoff_us) * 1e-6;
}

void RetryPolicy::register_options(OptionParser& options) {
  options.add_int("io-retry-attempts", 3,
                  "total tries per scheduled read (1 = no retry)");
  options.add_double("io-retry-backoff-us", 50.0,
                     "backoff before the first retry (microseconds)");
  options.add_double("io-deadline-ms", 0.0,
                     "per-request deadline (0 = none)");
}

RetryPolicy RetryPolicy::from_options(const OptionParser& options) {
  RetryPolicy policy;
  policy.max_attempts =
      static_cast<int>(options.get_int("io-retry-attempts"));
  policy.initial_backoff_us = options.get_double("io-retry-backoff-us");
  policy.deadline_seconds = options.get_double("io-deadline-ms") * 1e-3;
  return policy;
}

}  // namespace sembfs
