#include "numa/topology.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace sembfs {

NumaTopology::NumaTopology(std::size_t nodes, std::size_t cores_per_node)
    : nodes_(nodes), cores_per_node_(cores_per_node) {
  SEMBFS_EXPECTS(nodes >= 1);
  SEMBFS_EXPECTS(cores_per_node >= 1);
}

NumaTopology NumaTopology::with_total_threads(std::size_t nodes,
                                              std::size_t total_threads) {
  SEMBFS_EXPECTS(nodes >= 1);
  const std::size_t per_node = std::max<std::size_t>(1, total_threads / nodes);
  return NumaTopology{nodes, per_node};
}

std::string NumaTopology::describe() const {
  return std::to_string(nodes_) + " emulated NUMA node(s) x " +
         std::to_string(cores_per_node_) + " core(s)";
}

}  // namespace sembfs
