// Per-node memory accounting.
//
// On the paper's hardware every array is allocated with node-local pages;
// here we emulate that with ordinary allocations but keep exact per-node
// byte accounting, so tests and the graph-size harness can verify that the
// DRAM footprint matches the paper's Table II breakdown and that offloading
// really removes the forward graph from "DRAM".
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/contracts.hpp"

namespace sembfs {

/// Tracks bytes notionally resident on each emulated NUMA node.
class NumaArena {
 public:
  explicit NumaArena(std::size_t nodes);

  NumaArena(const NumaArena&) = delete;
  NumaArena& operator=(const NumaArena&) = delete;

  [[nodiscard]] std::size_t node_count() const noexcept {
    return per_node_.size();
  }

  void record_alloc(std::size_t node, std::uint64_t bytes) noexcept;
  void record_free(std::size_t node, std::uint64_t bytes) noexcept;

  [[nodiscard]] std::uint64_t bytes_on(std::size_t node) const noexcept;
  [[nodiscard]] std::uint64_t total_bytes() const noexcept;

  /// Allocates a value-initialized vector accounted to `node`. The caller
  /// owns the data; accounting is released via record_free (see NodeVector).
  template <typename T>
  std::vector<T> alloc_vector(std::size_t node, std::size_t count) {
    record_alloc(node, count * sizeof(T));
    return std::vector<T>(count);
  }

 private:
  struct alignas(64) Counter {
    std::atomic<std::uint64_t> bytes{0};
  };
  std::vector<Counter> per_node_;
};

}  // namespace sembfs
