// Emulated NUMA topology.
//
// The paper runs on a 4-socket Opteron (4 NUMA nodes x 12 cores) and keys
// every data structure off the node a vertex belongs to. This machine has
// no multi-socket hardware, so the topology is *emulated*: a fixed node
// count and cores-per-node, and a deterministic worker->node mapping. All
// NUMA-aware code in the library is written against this interface, so on a
// real multi-socket machine only this file would need libnuma-backed
// pinning — the algorithms are unchanged.
#pragma once

#include <cstddef>
#include <string>

namespace sembfs {

class NumaTopology {
 public:
  /// `nodes` emulated NUMA nodes with `cores_per_node` workers each.
  NumaTopology(std::size_t nodes, std::size_t cores_per_node);

  /// Topology with `nodes` nodes splitting `total_threads` as evenly as
  /// possible (at least one core per node).
  static NumaTopology with_total_threads(std::size_t nodes,
                                         std::size_t total_threads);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_; }
  [[nodiscard]] std::size_t cores_per_node() const noexcept {
    return cores_per_node_;
  }
  [[nodiscard]] std::size_t total_threads() const noexcept {
    return nodes_ * cores_per_node_;
  }

  /// Node owning pool-worker `worker` (workers are striped in node blocks).
  [[nodiscard]] std::size_t node_of_worker(std::size_t worker) const noexcept {
    return worker / cores_per_node_;
  }

  /// Rank of `worker` within its node, in [0, cores_per_node).
  [[nodiscard]] std::size_t rank_in_node(std::size_t worker) const noexcept {
    return worker % cores_per_node_;
  }

  /// First pool-worker index belonging to `node`.
  [[nodiscard]] std::size_t first_worker_of(std::size_t node) const noexcept {
    return node * cores_per_node_;
  }

  [[nodiscard]] std::string describe() const;

 private:
  std::size_t nodes_;
  std::size_t cores_per_node_;
};

/// Calls fn(node) for every node that `worker` must serve when only
/// `workers` workers participate in a parallel region over `nodes` nodes.
/// With workers >= nodes each worker serves one node (workers form teams);
/// with fewer workers than nodes each worker serves a strided set, so all
/// nodes are covered even on a single-thread pool.
template <typename Fn>
void for_each_assigned_node(std::size_t worker, std::size_t workers,
                            std::size_t nodes, Fn&& fn) {
  if (workers >= nodes) {
    fn(worker * nodes / workers);
    return;
  }
  for (std::size_t node = worker; node < nodes; node += workers) fn(node);
}

}  // namespace sembfs
