#include "numa/partition.hpp"

namespace sembfs {

VertexPartition::VertexPartition(std::int64_t vertex_count, std::size_t nodes)
    : n_(vertex_count) {
  SEMBFS_EXPECTS(vertex_count >= 0);
  SEMBFS_EXPECTS(nodes >= 1);
  bounds_.resize(nodes + 1);
  for (std::size_t k = 0; k <= nodes; ++k) {
    bounds_[k] = static_cast<std::int64_t>(
        (static_cast<unsigned __int128>(vertex_count) * k) / nodes);
  }
}

}  // namespace sembfs
