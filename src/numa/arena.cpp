#include "numa/arena.hpp"

namespace sembfs {

NumaArena::NumaArena(std::size_t nodes) : per_node_(nodes) {
  SEMBFS_EXPECTS(nodes >= 1);
}

void NumaArena::record_alloc(std::size_t node, std::uint64_t bytes) noexcept {
  SEMBFS_ASSERT(node < per_node_.size());
  per_node_[node].bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void NumaArena::record_free(std::size_t node, std::uint64_t bytes) noexcept {
  SEMBFS_ASSERT(node < per_node_.size());
  per_node_[node].bytes.fetch_sub(bytes, std::memory_order_relaxed);
}

std::uint64_t NumaArena::bytes_on(std::size_t node) const noexcept {
  SEMBFS_ASSERT(node < per_node_.size());
  return per_node_[node].bytes.load(std::memory_order_relaxed);
}

std::uint64_t NumaArena::total_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : per_node_)
    total += c.bytes.load(std::memory_order_relaxed);
  return total;
}

}  // namespace sembfs
