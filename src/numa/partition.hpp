// Block partitioning of the vertex ID space over emulated NUMA nodes.
//
// Paper, Section V-B-2: vertex v_i with i in [k*n/l, (k+1)*n/l) is assigned
// to NUMA node N_k. Both CSR graphs, the visited bitmap and the BFS tree
// use this mapping so that each node's threads only write node-local state.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "util/contracts.hpp"

namespace sembfs {

/// Half-open vertex range [begin, end).
struct VertexRange {
  std::int64_t begin = 0;
  std::int64_t end = 0;

  [[nodiscard]] std::int64_t size() const noexcept { return end - begin; }
  [[nodiscard]] bool contains(std::int64_t v) const noexcept {
    return v >= begin && v < end;
  }
  friend bool operator==(const VertexRange&, const VertexRange&) = default;
};

class VertexPartition {
 public:
  VertexPartition() = default;
  /// Partitions [0, vertex_count) into `nodes` contiguous blocks.
  VertexPartition(std::int64_t vertex_count, std::size_t nodes);

  [[nodiscard]] std::int64_t vertex_count() const noexcept { return n_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return bounds_.empty() ? 0 : bounds_.size() - 1;
  }

  /// Node owning vertex v.
  [[nodiscard]] std::size_t node_of(std::int64_t v) const noexcept {
    SEMBFS_ASSERT(v >= 0 && v < n_);
    // bounds_ are k*n/l, monotone; with l small a linear probe beats a
    // binary search, but the arithmetic inverse is exact and O(1):
    // node = floor(v * l / n) may be off by one around boundaries due to
    // flooring in bounds; correct with local adjustment.
    const std::size_t l = node_count();
    auto k = static_cast<std::size_t>(
        (static_cast<unsigned __int128>(v) * l) / static_cast<std::uint64_t>(n_));
    if (k >= l) k = l - 1;
    while (v < bounds_[k]) --k;
    while (v >= bounds_[k + 1]) ++k;
    return k;
  }

  /// Vertex range owned by `node`.
  [[nodiscard]] VertexRange range_of(std::size_t node) const noexcept {
    SEMBFS_ASSERT(node < node_count());
    return {bounds_[node], bounds_[node + 1]};
  }

  /// Offset of v within its node's block.
  [[nodiscard]] std::int64_t local_index(std::int64_t v) const noexcept {
    return v - bounds_[node_of(v)];
  }

  [[nodiscard]] const std::vector<std::int64_t>& bounds() const noexcept {
    return bounds_;
  }

 private:
  std::int64_t n_ = 0;
  std::vector<std::int64_t> bounds_;  // node_count+1 entries, 0 .. n
};

}  // namespace sembfs
