#include "graph500/result.hpp"

#include <cstdio>

namespace sembfs {

Graph500Output summarize_runs(int scale, int edge_factor,
                              const std::string& scenario,
                              double generation_seconds,
                              double construction_seconds,
                              const std::vector<BfsRunRecord>& runs) {
  Graph500Output out;
  out.scale = scale;
  out.edge_factor = edge_factor;
  out.scenario = scenario;
  out.nbfs = runs.size();
  out.generation_seconds = generation_seconds;
  out.construction_seconds = construction_seconds;

  std::vector<double> times, teps, edges;
  times.reserve(runs.size());
  teps.reserve(runs.size());
  edges.reserve(runs.size());
  out.all_validated = !runs.empty();
  for (const auto& r : runs) {
    times.push_back(r.seconds);
    teps.push_back(r.teps);
    edges.push_back(static_cast<double>(r.teps_edge_count));
    out.all_validated = out.all_validated && r.validated;
    if (r.degraded) ++out.degraded_runs;
  }
  out.time_stats = compute_stats(std::move(times));
  out.teps_stats = compute_stats(std::move(teps));
  out.edge_stats = compute_stats(std::move(edges));
  return out;
}

std::string render_graph500_output(const Graph500Output& out) {
  char buf[256];
  std::string s;
  auto emit = [&](const char* key, double value) {
    std::snprintf(buf, sizeof buf, "%s: %.6g\n", key, value);
    s += buf;
  };
  std::snprintf(buf, sizeof buf, "SCALE: %d\nedgefactor: %d\nscenario: %s\nNBFS: %llu\n",
                out.scale, out.edge_factor, out.scenario.c_str(),
                static_cast<unsigned long long>(out.nbfs));
  s += buf;
  emit("graph_generation", out.generation_seconds);
  emit("construction_time", out.construction_seconds);
  emit("min_time", out.time_stats.min);
  emit("firstquartile_time", out.time_stats.first_quartile);
  emit("median_time", out.time_stats.median);
  emit("thirdquartile_time", out.time_stats.third_quartile);
  emit("max_time", out.time_stats.max);
  emit("mean_time", out.time_stats.mean);
  emit("stddev_time", out.time_stats.stddev);
  emit("min_nedge", out.edge_stats.min);
  emit("firstquartile_nedge", out.edge_stats.first_quartile);
  emit("median_nedge", out.edge_stats.median);
  emit("thirdquartile_nedge", out.edge_stats.third_quartile);
  emit("max_nedge", out.edge_stats.max);
  emit("mean_nedge", out.edge_stats.mean);
  emit("stddev_nedge", out.edge_stats.stddev);
  emit("min_TEPS", out.teps_stats.min);
  emit("firstquartile_TEPS", out.teps_stats.first_quartile);
  emit("median_TEPS", out.teps_stats.median);
  emit("thirdquartile_TEPS", out.teps_stats.third_quartile);
  emit("max_TEPS", out.teps_stats.max);
  emit("harmonic_mean_TEPS", out.teps_stats.harmonic_mean);
  emit("harmonic_stddev_TEPS", out.teps_stats.harmonic_stddev);
  std::snprintf(buf, sizeof buf, "degraded_runs: %llu\n",
                static_cast<unsigned long long>(out.degraded_runs));
  s += buf;
  std::snprintf(buf, sizeof buf, "validation: %s\n",
                out.all_validated ? "PASSED" : "FAILED");
  s += buf;
  return s;
}

}  // namespace sembfs
