// The complete Graph500 benchmark driver (paper Section II):
//   Step 1  generate the edge list
//   Step 2  construct forward/backward graphs (offloading per scenario)
//   Step 3  BFS from each of `num_roots` random roots
//   Step 4  validate each BFS tree
// The median TEPS over all roots is the benchmark score.
#pragma once

#include <cstdint>
#include <string>

#include "bfs/hybrid_bfs.hpp"
#include "graph500/instance.hpp"
#include "graph500/result.hpp"
#include "graph500/scenario.hpp"
#include "nvm/fault_plan.hpp"
#include "nvm/io_stats.hpp"
#include "parallel/thread_pool.hpp"

namespace sembfs {

struct BenchmarkConfig {
  InstanceConfig instance;
  BfsConfig bfs;
  int num_roots = 64;       ///< the spec's 64; benches use fewer by default
  bool validate = true;
  std::uint64_t root_seed = 0xbf5;
  /// Fault schedule armed on the instance's NVM device before Step 3 (only
  /// meaningful for scenarios with an NVM side). Disabled by default.
  FaultPlan fault_plan;
};

struct BenchmarkRun {
  Graph500Output output;
  std::vector<BfsRunRecord> runs;
  /// NVM iostat snapshot covering the whole Step-3/4 phase (empty counters
  /// in the DRAM-only scenario).
  IoStatsSnapshot nvm_io;
  std::uint64_t graph_dram_bytes = 0;
  std::uint64_t graph_nvm_bytes = 0;
  /// Uncompressed footprint of the NVM-resident graph data (equals
  /// graph_nvm_bytes under ChunkFormat::kRaw).
  std::uint64_t graph_nvm_raw_bytes = 0;
  std::uint64_t status_bytes = 0;
  /// Summed Graph500 TEPS numerators over every root — the edge total the
  /// nvm_io window covers, i.e. the bytes-per-edge denominator.
  std::uint64_t traversed_edges = 0;
};

/// Runs the whole benchmark on a fresh instance.
BenchmarkRun run_graph500(const BenchmarkConfig& config, ThreadPool& pool);

/// Runs Steps 3-4 on an existing instance (for parameter sweeps).
BenchmarkRun run_graph500_bfs_phase(Graph500Instance& instance,
                                    const BfsConfig& bfs, int num_roots,
                                    bool validate, std::uint64_t root_seed);

}  // namespace sembfs
