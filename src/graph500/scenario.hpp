// Storage scenarios — the paper's Table I machine configurations mapped
// onto the simulated device layer.
//
//   DRAM-only       : forward + backward + status all in DRAM
//   DRAM+PCIeFlash  : forward graph offloaded to a pcie_flash-profile device
//   DRAM+SSD        : forward graph offloaded to a sata_ssd-profile device
//
// Optionally the backward graph is partially offloaded too (Section VI-E):
// backward_dram_edges >= 0 keeps only that many edges per vertex in DRAM.
#pragma once

#include <cstdint>
#include <string>

#include "nvm/device_profile.hpp"

namespace sembfs {

enum class ScenarioKind { DramOnly, DramPcieFlash, DramSsd };

struct Scenario {
  ScenarioKind kind = ScenarioKind::DramOnly;
  std::string name = "DRAM-only";
  DeviceProfile nvm_profile;      ///< ignored for DramOnly
  bool offload_forward = false;   ///< forward graph on NVM?
  /// -1 = backward graph fully in DRAM; otherwise the per-vertex DRAM edge
  /// cap with the remainder on NVM.
  std::int64_t backward_dram_edges = -1;
  /// Multiplier on simulated device service times (documented knob to keep
  /// bench wall-clock reasonable; ratios between scenarios are unaffected).
  double time_scale = 1.0;

  static Scenario dram_only();
  static Scenario dram_pcie_flash();
  static Scenario dram_ssd();
  /// "dram" | "pcie_flash" | "ssd"; throws std::invalid_argument otherwise.
  static Scenario by_name(const std::string& name);

  /// Applies time_scale to the device profile and returns it.
  [[nodiscard]] DeviceProfile effective_profile() const;

  /// Table I-style one-line description.
  [[nodiscard]] std::string describe() const;
};

}  // namespace sembfs
