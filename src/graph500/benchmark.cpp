#include "graph500/benchmark.hpp"

#include <stdexcept>

#include "util/logging.hpp"

namespace sembfs {

BenchmarkRun run_graph500_bfs_phase(Graph500Instance& instance,
                                    const BfsConfig& bfs, int num_roots,
                                    bool validate, std::uint64_t root_seed) {
  BenchmarkRun run;
  if (instance.nvm_device() != nullptr) instance.nvm_device()->stats().reset();

  const auto roots = instance.select_roots(num_roots, root_seed);
  run.runs.reserve(roots.size());
  for (const Vertex root : roots) {
    BfsResult result = instance.run_bfs(root, bfs);
    BfsRunRecord record;
    record.root = root;
    record.seconds = result.seconds;
    record.teps_edge_count = result.teps_edge_count;
    record.teps = result.teps;
    record.visited = result.visited;
    record.depth = result.depth;
    record.io_failures = result.io_failures;
    record.degraded = result.degraded;
    if (validate) {
      const ValidationResult v = instance.validate(result);
      record.validated = v.ok;
      if (!v.ok)
        throw std::runtime_error("Graph500 validation failed for root " +
                                 std::to_string(root) + ": " + v.error);
    } else {
      record.validated = true;  // skipped, counted as pass like the spec's
                                // VERBOSE short-circuit
    }
    run.runs.push_back(record);
  }

  run.output = summarize_runs(
      instance.config().kronecker.scale, instance.config().kronecker.edge_factor,
      instance.config().scenario.name, instance.generation_seconds(),
      instance.construction_seconds(), run.runs);
  if (instance.nvm_device() != nullptr)
    run.nvm_io = instance.nvm_device()->stats().snapshot();
  run.graph_dram_bytes = instance.graph_dram_bytes();
  run.graph_nvm_bytes = instance.graph_nvm_bytes();
  run.graph_nvm_raw_bytes = instance.graph_nvm_raw_bytes();
  for (const BfsRunRecord& r : run.runs)
    run.traversed_edges += static_cast<std::uint64_t>(r.teps_edge_count);
  return run;
}

BenchmarkRun run_graph500(const BenchmarkConfig& config, ThreadPool& pool) {
  Graph500Instance instance{config.instance, pool};
  SEMBFS_LOG_INFO("instance ready: scale=%d ef=%d scenario=%s",
                  config.instance.kronecker.scale,
                  config.instance.kronecker.edge_factor,
                  config.instance.scenario.name.c_str());
  if (config.fault_plan.enabled() && instance.nvm_device() != nullptr) {
    // Armed after construction so Step 2's offload writes are clean; only
    // the Step-3/4 read path sees injected faults.
    instance.nvm_device()->set_fault_plan(config.fault_plan);
  }
  return run_graph500_bfs_phase(instance, config.bfs, config.num_roots,
                                config.validate, config.root_seed);
}

}  // namespace sembfs
