// Power/energy model for the Green Graph500 metric (MTEPS/W).
//
// The paper's implementation ranked 4th in the Green Graph500 Big Data
// category (Nov 2013) at 4.35 MTEPS/W on a 4-way Huawei server with 500 GB
// DRAM + 4 TB NVM. We have no power meter, so this module provides a
// parameterized power model — component envelopes typical of the paper's
// era — that turns a (TEPS, DRAM bytes, NVM device) triple into an
// estimated MTEPS/W, letting the bench compare the *energy-efficiency
// argument* of the offload: NVM watts are far cheaper than the DRAM watts
// they displace.
#pragma once

#include <cstdint>
#include <string>

namespace sembfs {

struct PowerModel {
  /// CPU package power under the BFS load, watts (Opteron 6172 ACP is
  /// 80 W, TDP 115 W; 4 sockets).
  double cpu_watts_per_socket = 115.0;
  unsigned sockets = 4;
  /// DDR3 RDIMM active power, watts per GiB (~0.4 W/GiB for 8 GiB DIMMs).
  double dram_watts_per_gib = 0.4;
  /// PCIe flash card active power (ioDrive2: ~25 W max).
  double pcie_flash_watts = 25.0;
  /// SATA SSD active power (Intel SSD 320: ~4 W active).
  double sata_ssd_watts = 4.0;
  /// Base platform power (fans, board, PSU loss), watts.
  double platform_watts = 60.0;

  [[nodiscard]] double device_watts(const std::string& profile_name) const;

  /// Total system watts for a configuration.
  [[nodiscard]] double system_watts(std::uint64_t dram_bytes,
                                    const std::string& nvm_profile) const;
};

struct EnergyEstimate {
  double watts = 0.0;
  double mteps = 0.0;
  double mteps_per_watt = 0.0;
};

/// MTEPS/W for a measured TEPS under a DRAM+NVM configuration.
EnergyEstimate estimate_energy(const PowerModel& model, double teps,
                               std::uint64_t dram_bytes,
                               const std::string& nvm_profile);

}  // namespace sembfs
