#include "graph500/instance.hpp"

#include <algorithm>
#include <unordered_set>

#include "nvm/storage_file.hpp"
#include "util/contracts.hpp"
#include "util/logging.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

namespace sembfs {

EdgeStream Graph500Instance::edge_stream() {
  if (external_edges_ != nullptr) {
    return [this](const std::function<void(std::span<const Edge>)>& sink) {
      external_edges_->for_each_batch(1 << 18, sink);
    };
  }
  return [this](const std::function<void(std::span<const Edge>)>& sink) {
    sink(edges_->edges());
  };
}

Graph500Instance::Graph500Instance(InstanceConfig config, ThreadPool& pool)
    : config_(std::move(config)),
      pool_(pool),
      topology_(NumaTopology::with_total_threads(config_.numa_nodes,
                                                 pool.size())) {
  vertex_count_ = config_.kronecker.vertex_count();

  // Step 1: edge list generation (+ optional offload to its own device).
  Timer gen_timer;
  EdgeList generated = generate_kronecker(config_.kronecker, pool_);
  if (config_.offload_edge_list) {
    ensure_directory(config_.workdir);
    // The paper isolates the edge list and the CSR data on different
    // devices (Section VI-D), so BFS-phase iostat is not polluted by
    // validation traffic.
    edge_device_ =
        std::make_shared<NvmDevice>(config_.scenario.effective_profile());
    external_edges_ = std::make_unique<ExternalEdgeList>(
        edge_device_, config_.workdir + "/edge_list.packed", vertex_count_);
    external_edges_->append_all(generated);
    generated = EdgeList{};  // release the DRAM copy
  } else {
    edges_.emplace(std::move(generated));
  }
  generation_seconds_ = gen_timer.seconds();

  // Step 2: graph construction (+ offload per scenario). With an offloaded
  // edge list, both graphs are built by streaming it back from NVM.
  Timer build_timer;
  const VertexPartition partition{vertex_count_, config_.numa_nodes};
  CsrBuildOptions options;  // undirected, self-loop-free (defaults)
  if (config_.offload_edge_list) {
    const EdgeStream stream = edge_stream();
    forward_dram_.emplace(ForwardGraph::build_stream(
        vertex_count_, stream, partition, options, pool_));
    backward_ = BackwardGraph::build_stream(vertex_count_, stream,
                                            partition, options, pool_);
  } else {
    forward_dram_.emplace(
        ForwardGraph::build(*edges_, partition, options, pool_));
    backward_ = BackwardGraph::build(*edges_, partition, options, pool_);
  }

  const Scenario& scenario = config_.scenario;
  const bool needs_device =
      scenario.offload_forward || scenario.backward_dram_edges >= 0;
  if (needs_device) {
    ensure_directory(config_.workdir);
    device_ = std::make_shared<NvmDevice>(scenario.effective_profile());
  }
  if (scenario.offload_forward) {
    external_forward_ = std::make_unique<ExternalForwardGraph>(
        *forward_dram_, device_, config_.workdir, config_.chunk_bytes,
        config_.chunk_format);
    forward_dram_.reset();  // release the DRAM copy — the offload's purpose
    SEMBFS_LOG_INFO("forward graph offloaded to %s (%llu bytes, %s chunks)",
                    device_->profile().name.c_str(),
                    static_cast<unsigned long long>(
                        external_forward_->nvm_byte_size()),
                    std::string(to_string(config_.chunk_format)).c_str());
  }
  if (scenario.backward_dram_edges >= 0) {
    hybrid_backward_ = std::make_unique<HybridBackwardGraph>(
        backward_, scenario.backward_dram_edges, device_, config_.workdir,
        config_.chunk_bytes, config_.chunk_format);
  }
  construction_seconds_ = build_timer.seconds();

  runner_ = std::make_unique<HybridBfsRunner>(storage(), topology_, pool_);
}

const EdgeList& Graph500Instance::edge_list() const {
  SEMBFS_EXPECTS(edges_.has_value());
  return *edges_;
}

GraphStorage Graph500Instance::storage() noexcept {
  GraphStorage s;
  if (external_forward_ != nullptr)
    s.forward_external = external_forward_.get();
  else
    s.forward_dram = &*forward_dram_;
  if (hybrid_backward_ != nullptr)
    s.backward_hybrid = hybrid_backward_.get();
  else
    s.backward_dram = &backward_;
  return s;
}

std::uint64_t Graph500Instance::graph_dram_bytes() const noexcept {
  std::uint64_t total = backward_.byte_size();
  if (hybrid_backward_ != nullptr)
    total = hybrid_backward_->dram_byte_size();  // replaces plain backward
  if (forward_dram_.has_value()) total += forward_dram_->byte_size();
  return total;
}

std::uint64_t Graph500Instance::graph_nvm_bytes() const noexcept {
  std::uint64_t total = 0;
  if (external_forward_ != nullptr) total += external_forward_->nvm_byte_size();
  if (hybrid_backward_ != nullptr) total += hybrid_backward_->nvm_byte_size();
  return total;
}

std::uint64_t Graph500Instance::graph_nvm_raw_bytes() const noexcept {
  std::uint64_t total = 0;
  if (external_forward_ != nullptr) total += external_forward_->raw_byte_size();
  if (hybrid_backward_ != nullptr)
    total += hybrid_backward_->nvm_raw_byte_size();
  return total;
}

BfsResult Graph500Instance::run_bfs(Vertex root, const BfsConfig& bfs_config) {
  return runner_->run(root, bfs_config);
}

ValidationResult Graph500Instance::validate(const BfsResult& result) {
  if (external_edges_ != nullptr)
    return validate_bfs(*external_edges_, result.root, result.parent,
                        result.level);
  return validate_bfs(*edges_, result.root, result.parent, result.level);
}

std::vector<Vertex> Graph500Instance::select_roots(int count,
                                                   std::uint64_t seed) const {
  SEMBFS_EXPECTS(count >= 1);
  // Degree check without requiring the full CSR: backward graph covers
  // every vertex exactly once.
  const auto has_edges = [&](Vertex v) {
    return backward_.neighbors(v).size() > 0;
  };
  std::vector<Vertex> roots;
  std::unordered_set<Vertex> chosen;
  Xoroshiro128 rng{derive_seed(seed, 0x526f6f74)};  // "Root"
  const auto n = static_cast<std::uint64_t>(vertex_count_);
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = 100 * n + 1000;
  while (roots.size() < static_cast<std::size_t>(count) &&
         attempts < max_attempts) {
    ++attempts;
    const auto v = static_cast<Vertex>(rng.next_below(n));
    if (!has_edges(v) || chosen.contains(v)) continue;
    chosen.insert(v);
    roots.push_back(v);
  }
  SEMBFS_ENSURES(!roots.empty());
  return roots;
}

const Csr& Graph500Instance::full_csr() {
  if (!full_csr_.has_value()) {
    CsrBuildOptions options;
    if (external_edges_ != nullptr) {
      full_csr_.emplace(build_csr_filtered_stream(
          vertex_count_, edge_stream(), VertexRange{0, vertex_count_},
          VertexRange{0, vertex_count_}, options, pool_));
    } else {
      full_csr_.emplace(build_csr(*edges_, options, pool_));
    }
  }
  return *full_csr_;
}

}  // namespace sembfs
