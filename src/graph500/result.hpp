// Graph500-style benchmark result block.
//
// The official output reports construction time plus the distribution of
// per-root times, TEPS (with harmonic mean/stddev, since TEPS is a rate)
// and traversed-edge counts over the 64 BFS runs; this reproduces that
// shape so results can be compared to any Graph500 submission.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/statistics.hpp"

namespace sembfs {

/// One Step-3/4 iteration.
struct BfsRunRecord {
  std::int64_t root = -1;
  double seconds = 0.0;
  std::int64_t teps_edge_count = 0;
  double teps = 0.0;
  std::int64_t visited = 0;
  std::int32_t depth = 0;
  bool validated = false;
  std::uint64_t io_failures = 0;  ///< contained adjacency-fetch failures
  bool degraded = false;  ///< some level fell back to DRAM bottom-up
};

struct Graph500Output {
  int scale = 0;
  int edge_factor = 0;
  std::string scenario;
  std::uint64_t nbfs = 0;
  double generation_seconds = 0.0;
  double construction_seconds = 0.0;
  SampleStats time_stats;
  SampleStats teps_stats;
  SampleStats edge_stats;
  bool all_validated = false;
  std::uint64_t degraded_runs = 0;  ///< runs with >= 1 degraded level

  /// Median TEPS — the Graph500 score.
  [[nodiscard]] double score() const noexcept { return teps_stats.median; }
};

/// Aggregates per-run records into the output block.
Graph500Output summarize_runs(int scale, int edge_factor,
                              const std::string& scenario,
                              double generation_seconds,
                              double construction_seconds,
                              const std::vector<BfsRunRecord>& runs);

/// Renders the official-looking key:value block.
std::string render_graph500_output(const Graph500Output& out);

}  // namespace sembfs
