#include "graph500/energy.hpp"

namespace sembfs {

double PowerModel::device_watts(const std::string& profile_name) const {
  if (profile_name == "pcie_flash") return pcie_flash_watts;
  if (profile_name == "sata_ssd") return sata_ssd_watts;
  return 0.0;  // "dram" or none
}

double PowerModel::system_watts(std::uint64_t dram_bytes,
                                const std::string& nvm_profile) const {
  const double dram_gib =
      static_cast<double>(dram_bytes) / (1024.0 * 1024.0 * 1024.0);
  return cpu_watts_per_socket * sockets + dram_watts_per_gib * dram_gib +
         device_watts(nvm_profile) + platform_watts;
}

EnergyEstimate estimate_energy(const PowerModel& model, double teps,
                               std::uint64_t dram_bytes,
                               const std::string& nvm_profile) {
  EnergyEstimate estimate;
  estimate.watts = model.system_watts(dram_bytes, nvm_profile);
  estimate.mteps = teps / 1e6;
  estimate.mteps_per_watt =
      estimate.watts > 0.0 ? estimate.mteps / estimate.watts : 0.0;
  return estimate;
}

}  // namespace sembfs
