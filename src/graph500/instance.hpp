// One constructed Graph500 problem instance under a storage scenario:
// Steps 1 (edge list) and 2 (graph construction + offload) done once, ready
// to serve repeated Step 3/4 (BFS + validation) runs — which is how the
// alpha/beta sweep benches avoid rebuilding the graph per configuration.
//
// With `offload_edge_list` set, Step 1 writes the packed edge list to its
// own simulated NVM device and frees the DRAM copy; Step 2 then constructs
// both graphs by *streaming* the edge list back from NVM, and Step 4
// validates against the NVM-resident list — the exact flow of the paper's
// Section V-A (the edge list and the CSR graphs live on different devices,
// as in its Section VI-D measurement setup).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bfs/hybrid_bfs.hpp"
#include "bfs/reference_bfs.hpp"
#include "bfs/validate.hpp"
#include "graph/backward_graph.hpp"
#include "graph/external_csr.hpp"
#include "graph/external_edge_list.hpp"
#include "graph/forward_graph.hpp"
#include "graph/hybrid_csr.hpp"
#include "graph/kronecker.hpp"
#include "graph500/scenario.hpp"
#include "numa/topology.hpp"
#include "parallel/thread_pool.hpp"

namespace sembfs {

struct InstanceConfig {
  KroneckerParams kronecker;
  Scenario scenario = Scenario::dram_only();
  std::size_t numa_nodes = 4;
  std::string workdir = "/tmp/sembfs";
  std::uint32_t chunk_bytes = 4096;  ///< NVM read chunk (paper: 4 KiB)
  /// On-NVM adjacency layout for the offloaded forward graph (and the
  /// hybrid backward remainder): raw 8-byte entries or delta/varint blobs.
  ChunkFormat chunk_format = ChunkFormat::kRaw;
  /// Step 1 offload: edge list on its own NVM device, Step 2 streams it.
  bool offload_edge_list = false;
};

class Graph500Instance {
 public:
  /// Generates the edge list and constructs all graphs per the scenario.
  Graph500Instance(InstanceConfig config, ThreadPool& pool);

  [[nodiscard]] const InstanceConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] Vertex vertex_count() const noexcept { return vertex_count_; }
  /// In-memory edge list; only available without offload_edge_list.
  [[nodiscard]] const EdgeList& edge_list() const;
  /// NVM-resident edge list; only available with offload_edge_list.
  [[nodiscard]] ExternalEdgeList* external_edge_list() noexcept {
    return external_edges_.get();
  }
  [[nodiscard]] const NumaTopology& topology() const noexcept {
    return topology_;
  }

  [[nodiscard]] double generation_seconds() const noexcept {
    return generation_seconds_;
  }
  [[nodiscard]] double construction_seconds() const noexcept {
    return construction_seconds_;
  }

  /// DRAM bytes of graph data (forward-if-resident + backward DRAM tier).
  [[nodiscard]] std::uint64_t graph_dram_bytes() const noexcept;
  /// NVM bytes of graph data (not counting the offloaded edge list).
  /// With chunk_format = kVarint this is the *encoded* footprint.
  [[nodiscard]] std::uint64_t graph_nvm_bytes() const noexcept;
  /// What the same NVM-resident graph data would occupy uncompressed
  /// (equals graph_nvm_bytes() under kRaw); the compression-ratio
  /// denominator for the bytes-per-edge reports.
  [[nodiscard]] std::uint64_t graph_nvm_raw_bytes() const noexcept;

  /// The simulated NVM device holding the CSR graphs (null in DRAM-only
  /// scenarios). The offloaded edge list lives on a *separate* device.
  [[nodiscard]] NvmDevice* nvm_device() noexcept { return device_.get(); }
  [[nodiscard]] NvmDevice* edge_list_device() noexcept {
    return edge_device_.get();
  }

  /// Storage handles for a HybridBfsRunner.
  [[nodiscard]] GraphStorage storage() noexcept;

  /// Runs one BFS and returns its full result.
  BfsResult run_bfs(Vertex root, const BfsConfig& bfs_config);

  /// Graph500 Step 4 on a BFS result (streams from NVM when offloaded).
  ValidationResult validate(const BfsResult& result);

  /// Picks `count` distinct roots with degree >= 1 (Graph500 rule).
  std::vector<Vertex> select_roots(int count, std::uint64_t seed) const;

  /// Whole-graph CSR (built lazily; used by the reference baseline and
  /// degree analyses).
  const Csr& full_csr();

  /// Partially-offloaded backward graph (Section VI-E); only present when
  /// scenario.backward_dram_edges >= 0.
  [[nodiscard]] HybridBackwardGraph* hybrid_backward() noexcept {
    return hybrid_backward_.get();
  }
  [[nodiscard]] ExternalForwardGraph* external_forward() noexcept {
    return external_forward_.get();
  }
  [[nodiscard]] const BackwardGraph& backward() const noexcept {
    return backward_;
  }
  /// Forward graph in DRAM; null after offload (the DRAM copy is released,
  /// which is the point of the technique).
  [[nodiscard]] const ForwardGraph* forward_dram() const noexcept {
    return forward_dram_ ? &*forward_dram_ : nullptr;
  }

 private:
  [[nodiscard]] EdgeStream edge_stream();

  InstanceConfig config_;
  ThreadPool& pool_;
  NumaTopology topology_;
  Vertex vertex_count_ = 0;
  std::optional<EdgeList> edges_;
  std::shared_ptr<NvmDevice> edge_device_;
  std::unique_ptr<ExternalEdgeList> external_edges_;
  std::optional<ForwardGraph> forward_dram_;
  BackwardGraph backward_;
  std::shared_ptr<NvmDevice> device_;
  std::unique_ptr<ExternalForwardGraph> external_forward_;
  std::unique_ptr<HybridBackwardGraph> hybrid_backward_;
  std::unique_ptr<HybridBfsRunner> runner_;
  std::optional<Csr> full_csr_;
  double generation_seconds_ = 0.0;
  double construction_seconds_ = 0.0;
};

}  // namespace sembfs
