#include "graph500/scenario.hpp"

#include <stdexcept>

namespace sembfs {

Scenario Scenario::dram_only() {
  Scenario s;
  s.kind = ScenarioKind::DramOnly;
  s.name = "DRAM-only";
  s.nvm_profile = DeviceProfile::dram();
  s.offload_forward = false;
  return s;
}

Scenario Scenario::dram_pcie_flash() {
  Scenario s;
  s.kind = ScenarioKind::DramPcieFlash;
  s.name = "DRAM+PCIeFlash";
  s.nvm_profile = DeviceProfile::pcie_flash();
  s.offload_forward = true;
  return s;
}

Scenario Scenario::dram_ssd() {
  Scenario s;
  s.kind = ScenarioKind::DramSsd;
  s.name = "DRAM+SSD";
  s.nvm_profile = DeviceProfile::sata_ssd();
  s.offload_forward = true;
  return s;
}

Scenario Scenario::by_name(const std::string& name) {
  if (name == "dram" || name == "dram_only") return dram_only();
  if (name == "pcie_flash" || name == "pcieflash") return dram_pcie_flash();
  if (name == "ssd" || name == "sata_ssd") return dram_ssd();
  throw std::invalid_argument("unknown scenario '" + name +
                              "' (want dram | pcie_flash | ssd)");
}

DeviceProfile Scenario::effective_profile() const {
  DeviceProfile p = nvm_profile;
  p.time_scale = time_scale;
  return p;
}

std::string Scenario::describe() const {
  std::string out = name;
  if (offload_forward)
    out += " (forward graph on " + nvm_profile.name + ")";
  else
    out += " (all graphs in DRAM)";
  if (backward_dram_edges >= 0)
    out += ", backward graph capped at " +
           std::to_string(backward_dram_edges) + " DRAM edges/vertex";
  return out;
}

}  // namespace sembfs
