// In-process message fabric for the simulated multi-node BFS (the paper's
// "applying our technique to multi-node environments" future work,
// following Beamer et al., MTAAP'13 — the paper's reference [14]).
//
// R simulated ranks exchange vertex messages through per-(src,dst)
// mailboxes. Communication is phase-based, matching level-synchronous BFS:
// ranks send during the expand phase, hit a barrier, then drain their
// inboxes. Every payload byte is accounted per rank pair, which is the
// measurable the distributed-BFS literature cares about (bottom-up exists
// to slash communication volume).
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "parallel/spin_barrier.hpp"
#include "util/contracts.hpp"

namespace sembfs {

class MessageBus {
 public:
  explicit MessageBus(std::size_t ranks);

  [[nodiscard]] std::size_t rank_count() const noexcept { return ranks_; }

  /// Sends `payload` vertices from `from` to `to` (buffered until the
  /// receiver drains). Thread-safe per mailbox.
  void send(std::size_t from, std::size_t to,
            std::span<const Vertex> payload);

  /// Moves out everything queued for (from -> to). Caller is the receiver.
  std::vector<Vertex> drain(std::size_t from, std::size_t to);

  /// Drains all inboxes of `to` into one vector (arbitrary sender order).
  std::vector<Vertex> drain_all(std::size_t to);

  /// Level barrier shared by all ranks.
  void barrier() { barrier_.arrive_and_wait(); }

  /// Total payload bytes ever sent from `from` to `to`.
  [[nodiscard]] std::uint64_t bytes_sent(std::size_t from,
                                         std::size_t to) const;
  /// Total payload bytes across all rank pairs (excluding self-sends).
  [[nodiscard]] std::uint64_t total_remote_bytes() const;
  [[nodiscard]] std::uint64_t total_messages() const;

  void reset_counters();

 private:
  struct Mailbox {
    mutable std::mutex mutex;
    std::vector<Vertex> queue;
    std::uint64_t bytes = 0;
    std::uint64_t messages = 0;
  };

  [[nodiscard]] Mailbox& box(std::size_t from, std::size_t to) {
    SEMBFS_ASSERT(from < ranks_ && to < ranks_);
    return mailboxes_[from * ranks_ + to];
  }
  [[nodiscard]] const Mailbox& box(std::size_t from, std::size_t to) const {
    SEMBFS_ASSERT(from < ranks_ && to < ranks_);
    return mailboxes_[from * ranks_ + to];
  }

  std::size_t ranks_;
  std::vector<Mailbox> mailboxes_;  // ranks x ranks
  SpinBarrier barrier_;
};

}  // namespace sembfs
