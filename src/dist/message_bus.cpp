#include "dist/message_bus.hpp"

namespace sembfs {

MessageBus::MessageBus(std::size_t ranks)
    : ranks_(ranks), mailboxes_(ranks * ranks), barrier_(ranks) {
  SEMBFS_EXPECTS(ranks >= 1);
}

void MessageBus::send(std::size_t from, std::size_t to,
                      std::span<const Vertex> payload) {
  if (payload.empty()) return;
  Mailbox& mailbox = box(from, to);
  const std::lock_guard<std::mutex> lock{mailbox.mutex};
  mailbox.queue.insert(mailbox.queue.end(), payload.begin(), payload.end());
  mailbox.bytes += payload.size_bytes();
  ++mailbox.messages;
}

std::vector<Vertex> MessageBus::drain(std::size_t from, std::size_t to) {
  Mailbox& mailbox = box(from, to);
  const std::lock_guard<std::mutex> lock{mailbox.mutex};
  std::vector<Vertex> out;
  out.swap(mailbox.queue);
  return out;
}

std::vector<Vertex> MessageBus::drain_all(std::size_t to) {
  std::vector<Vertex> out;
  for (std::size_t from = 0; from < ranks_; ++from) {
    Mailbox& mailbox = box(from, to);
    const std::lock_guard<std::mutex> lock{mailbox.mutex};
    out.insert(out.end(), mailbox.queue.begin(), mailbox.queue.end());
    mailbox.queue.clear();
  }
  return out;
}

std::uint64_t MessageBus::bytes_sent(std::size_t from, std::size_t to) const {
  const Mailbox& mailbox = box(from, to);
  const std::lock_guard<std::mutex> lock{mailbox.mutex};
  return mailbox.bytes;
}

std::uint64_t MessageBus::total_remote_bytes() const {
  std::uint64_t total = 0;
  for (std::size_t from = 0; from < ranks_; ++from)
    for (std::size_t to = 0; to < ranks_; ++to)
      if (from != to) total += bytes_sent(from, to);
  return total;
}

std::uint64_t MessageBus::total_messages() const {
  std::uint64_t total = 0;
  for (const Mailbox& mailbox : mailboxes_) {
    const std::lock_guard<std::mutex> lock{mailbox.mutex};
    total += mailbox.messages;
  }
  return total;
}

void MessageBus::reset_counters() {
  for (Mailbox& mailbox : mailboxes_) {
    const std::lock_guard<std::mutex> lock{mailbox.mutex};
    mailbox.bytes = 0;
    mailbox.messages = 0;
  }
}

}  // namespace sembfs
