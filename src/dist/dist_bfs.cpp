#include "dist/dist_bfs.hpp"

#include <atomic>

#include "util/bitmap.hpp"
#include "util/contracts.hpp"
#include "util/timer.hpp"

namespace sembfs {

DistributedBfs::DistributedBfs(const EdgeList& edges, std::size_t ranks,
                               ThreadPool& pool)
    : n_(edges.vertex_count()),
      ranks_(ranks),
      pool_(pool),
      partition_(edges.vertex_count(), ranks) {
  SEMBFS_EXPECTS(ranks >= 1);
  SEMBFS_EXPECTS(pool.size() >= ranks);
  local_graphs_.reserve(ranks);
  const VertexRange all{0, n_};
  for (std::size_t r = 0; r < ranks; ++r) {
    local_graphs_.push_back(build_csr_filtered(
        edges, partition_.range_of(r), all, CsrBuildOptions{}, pool));
  }
}

DistBfsResult DistributedBfs::run(Vertex root, const DistBfsConfig& config) {
  SEMBFS_EXPECTS(root >= 0 && root < n_);

  DistBfsResult result;
  result.root = root;
  result.parent.assign(static_cast<std::size_t>(n_), kNoVertex);
  result.level.assign(static_cast<std::size_t>(n_), -1);

  MessageBus bus{ranks_};

  // Shared per-level coordination state (the "allreduce" side channel).
  struct Shared {
    std::atomic<std::int64_t> claimed{0};
    std::atomic<std::int64_t> frontier_total{0};
    std::atomic<int> direction{0};  // 0 = top-down, 1 = bottom-up
    std::atomic<bool> done{false};
    std::atomic<std::int64_t> degree_sum{0};
  } shared;
  shared.direction.store(
      config.mode == DistBfsConfig::Mode::BottomUpOnly ? 1 : 0);

  // Per-rank frontier queues (owned vertices only).
  std::vector<std::vector<Vertex>> frontier(ranks_);
  std::vector<std::vector<Vertex>> next(ranks_);
  {
    const std::size_t owner = partition_.node_of(root);
    frontier[owner].push_back(root);
    result.parent[static_cast<std::size_t>(root)] = root;
    result.level[static_cast<std::size_t>(root)] = 0;
  }
  std::int64_t prev_frontier = 0;
  std::int64_t cur_frontier_total = 1;

  std::mutex stats_mutex;  // guards result.levels appends (rank 0 only)

  Timer timer;
  std::int32_t level = 1;
  while (cur_frontier_total > 0) {
    shared.claimed.store(0);
    shared.frontier_total.store(0);
    const Direction direction = shared.direction.load() == 0
                                    ? Direction::TopDown
                                    : Direction::BottomUp;
    const std::uint64_t bytes_before = bus.total_remote_bytes();

    pool_.run(ranks_, [&](std::size_t rank) {
      const Csr& graph = local_graphs_[rank];
      const VertexRange owned = partition_.range_of(rank);
      auto& my_next = next[rank];
      my_next.clear();
      std::int64_t claimed = 0;

      if (direction == Direction::TopDown) {
        // Expand owned frontier; local claims direct, remote claims as
        // (child, parent) pairs to the child's owner.
        std::vector<std::vector<Vertex>> outbox(ranks_);
        for (const Vertex v : frontier[rank]) {
          for (const Vertex w : graph.neighbors(v)) {
            const std::size_t owner = partition_.node_of(w);
            if (owner == rank) {
              if (result.parent[static_cast<std::size_t>(w)] == kNoVertex) {
                result.parent[static_cast<std::size_t>(w)] = v;
                result.level[static_cast<std::size_t>(w)] = level;
                my_next.push_back(w);
                ++claimed;
              }
            } else {
              outbox[owner].push_back(w);
              outbox[owner].push_back(v);
            }
          }
        }
        for (std::size_t to = 0; to < ranks_; ++to)
          if (to != rank) bus.send(rank, to, outbox[to]);
        bus.barrier();  // all claim messages delivered

        const std::vector<Vertex> inbox = bus.drain_all(rank);
        SEMBFS_ASSERT(inbox.size() % 2 == 0);
        for (std::size_t i = 0; i < inbox.size(); i += 2) {
          const Vertex w = inbox[i];
          const Vertex v = inbox[i + 1];
          SEMBFS_ASSERT(owned.contains(w));
          if (result.parent[static_cast<std::size_t>(w)] == kNoVertex) {
            result.parent[static_cast<std::size_t>(w)] = v;
            result.level[static_cast<std::size_t>(w)] = level;
            my_next.push_back(w);
            ++claimed;
          }
        }
      } else {
        // Bottom-up: allgather the frontier so membership is global...
        for (std::size_t to = 0; to < ranks_; ++to)
          if (to != rank) bus.send(rank, to, frontier[rank]);
        bus.barrier();

        Bitmap in_frontier{static_cast<std::size_t>(n_)};
        for (const Vertex v : frontier[rank])
          in_frontier.set(static_cast<std::size_t>(v));
        for (const Vertex v : bus.drain_all(rank))
          in_frontier.set(static_cast<std::size_t>(v));

        // ...then sweep owned unvisited vertices, claims purely local.
        for (Vertex w = owned.begin; w < owned.end; ++w) {
          if (result.parent[static_cast<std::size_t>(w)] != kNoVertex)
            continue;
          for (const Vertex v : graph.neighbors(w)) {
            if (in_frontier.test(static_cast<std::size_t>(v))) {
              result.parent[static_cast<std::size_t>(w)] = v;
              result.level[static_cast<std::size_t>(w)] = level;
              my_next.push_back(w);
              ++claimed;
              break;
            }
          }
        }
        bus.barrier();  // keep the barrier count uniform across phases
      }

      shared.claimed.fetch_add(claimed);
      shared.frontier_total.fetch_add(
          static_cast<std::int64_t>(my_next.size()));
      bus.barrier();  // all claims visible before the level decision

      if (rank == 0) {
        const std::int64_t next_total = shared.frontier_total.load();
        DistLevelStats stats;
        stats.level = level;
        stats.direction = direction;
        stats.frontier_vertices = cur_frontier_total;
        stats.claimed_vertices = shared.claimed.load();
        stats.remote_bytes = bus.total_remote_bytes() - bytes_before;
        {
          const std::lock_guard<std::mutex> lock{stats_mutex};
          result.levels.push_back(stats);
        }
        if (config.mode == DistBfsConfig::Mode::Hybrid) {
          PolicyInput in;
          in.current = direction;
          in.n_all = n_;
          in.prev_frontier = cur_frontier_total;
          in.cur_frontier = next_total;
          shared.direction.store(
              config.policy.decide(in) == Direction::TopDown ? 0 : 1);
        }
        shared.done.store(next_total == 0);
      }
      bus.barrier();  // decision published
    });

    prev_frontier = cur_frontier_total;
    cur_frontier_total = shared.frontier_total.load();
    for (std::size_t r = 0; r < ranks_; ++r) frontier[r].swap(next[r]);
    ++level;
    if (shared.done.load()) break;
  }
  (void)prev_frontier;
  result.seconds = timer.seconds();
  result.depth = level - 1;
  result.total_remote_bytes = bus.total_remote_bytes();

  // Epilogue: visited count + TEPS numerator over owned ranges.
  shared.claimed.store(0);  // reused below as the visited accumulator
  pool_.run(ranks_, [&](std::size_t rank) {
    const VertexRange owned = partition_.range_of(rank);
    std::int64_t degree_sum = 0;
    std::int64_t visited = 0;
    for (Vertex v = owned.begin; v < owned.end; ++v) {
      if (result.parent[static_cast<std::size_t>(v)] == kNoVertex) continue;
      ++visited;
      degree_sum += local_graphs_[rank].degree(v);
    }
    shared.degree_sum.fetch_add(degree_sum);
    shared.claimed.fetch_add(visited);  // reuse as visited accumulator
  });
  result.visited = shared.claimed.load();
  result.teps_edge_count = shared.degree_sum.load() / 2;
  result.teps = result.seconds > 0.0
                    ? static_cast<double>(result.teps_edge_count) /
                          result.seconds
                    : 0.0;
  return result;
}

}  // namespace sembfs
