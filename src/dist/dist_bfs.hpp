// Simulated multi-node hybrid BFS — the paper's final future-work item
// ("applying our technique to multi-node environments"), following the
// 1D-partitioned direction-optimizing design of Beamer et al. (MTAAP'13,
// the paper's reference [14]).
//
// R simulated ranks each own a contiguous vertex range (the same block
// partitioning the NUMA layer uses) and the full adjacency of their owned
// vertices. Per level:
//   top-down   — each rank expands its owned frontier and sends
//                (child, parent) claim messages to the child's owner;
//                only the owner writes BFS state (single-writer).
//   bottom-up  — ranks allgather the frontier (the famous communication
//                pattern: frontier membership must be global), then sweep
//                their owned unvisited vertices with the early exit;
//                claims are purely local — NO per-edge messages, which is
//                exactly why distributed BFS wants the bottom-up direction.
// The MessageBus accounts every payload byte, so the bench can show the
// communication-volume collapse the hybrid switch buys.
#pragma once

#include <cstdint>
#include <vector>

#include "bfs/level_stats.hpp"
#include "bfs/policy.hpp"
#include "dist/message_bus.hpp"
#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "numa/partition.hpp"
#include "parallel/thread_pool.hpp"

namespace sembfs {

struct DistBfsConfig {
  SwitchPolicy policy;
  /// Forced direction for baselines; Hybrid uses the policy.
  enum class Mode { Hybrid, TopDownOnly, BottomUpOnly };
  Mode mode = Mode::Hybrid;
};

struct DistLevelStats {
  int level = 0;
  Direction direction = Direction::TopDown;
  std::int64_t frontier_vertices = 0;
  std::int64_t claimed_vertices = 0;
  std::uint64_t remote_bytes = 0;  ///< payload bytes crossing ranks
};

struct DistBfsResult {
  Vertex root = kNoVertex;
  double seconds = 0.0;
  std::int32_t depth = 0;
  std::int64_t visited = 0;
  std::uint64_t total_remote_bytes = 0;
  std::vector<DistLevelStats> levels;
  std::vector<Vertex> parent;
  std::vector<std::int32_t> level;
  std::int64_t teps_edge_count = 0;
  double teps = 0.0;
};

class DistributedBfs {
 public:
  /// Partitions the graph over `ranks` simulated nodes. The pool must have
  /// at least `ranks` workers (each rank runs on its own worker).
  DistributedBfs(const EdgeList& edges, std::size_t ranks, ThreadPool& pool);

  [[nodiscard]] std::size_t rank_count() const noexcept { return ranks_; }
  [[nodiscard]] Vertex vertex_count() const noexcept { return n_; }
  [[nodiscard]] const Csr& local_graph(std::size_t rank) const noexcept {
    return local_graphs_[rank];
  }

  DistBfsResult run(Vertex root, const DistBfsConfig& config);

 private:
  Vertex n_ = 0;
  std::size_t ranks_;
  ThreadPool& pool_;
  VertexPartition partition_;
  std::vector<Csr> local_graphs_;
};

}  // namespace sembfs
