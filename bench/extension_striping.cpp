// Extension: striping the offloaded forward graph across multiple NVM
// devices. The paper's machine was "heavily equipped with NVM devices"
// (4 TB across several cards) but the technique as published uses one
// device per dataset; Figure 12's deep queues (avgqu-sz 36-56) say the
// devices were the bottleneck. RAID-0-style striping multiplies service
// channels, so the same top-down-heavy workload should see queue depth
// and wall time fall roughly with the device count.
#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"

using namespace sembfs;
using namespace sembfs::bench;

int main() {
  BenchConfig config = BenchConfig::resolve();
  // Queue behaviour needs concurrency; mirror fig12's 48 issuing threads.
  config.env.threads = static_cast<int>(env_int("SEMBFS_THREADS", 48));
  print_header(config,
               "Extension — forward graph striped across D NVM devices",
               "multiplying service channels drains Figure 12's queues; "
               "expected: wall time and avgqu-sz fall with D");

  ThreadPool pool{static_cast<std::size_t>(config.env.threads)};
  const std::string dir = config.env.workdir + "/striping";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  KroneckerParams params;
  params.scale = config.env.scale;
  params.edge_factor = config.env.edge_factor;
  params.seed = config.env.seed;
  const EdgeList edges = generate_kronecker(params, pool);
  const VertexPartition partition{edges.vertex_count(),
                                  static_cast<std::size_t>(config.env.numa_nodes)};
  const ForwardGraph forward =
      ForwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const BackwardGraph backward =
      BackwardGraph::build(edges, partition, CsrBuildOptions{}, pool);

  Vertex root = 0;
  while (backward.neighbors(root).empty()) ++root;

  AsciiTable table({"devices (sata_ssd)", "median TEPS (TD-only)",
                    "max avgqu-sz", "sum await (ms)"});
  for (const std::size_t device_count : {std::size_t{1}, std::size_t{2},
                                         std::size_t{4}}) {
    DeviceProfile profile = DeviceProfile::sata_ssd();
    profile.time_scale = config.time_scale;
    std::vector<std::shared_ptr<NvmDevice>> devices;
    for (std::size_t i = 0; i < device_count; ++i)
      devices.push_back(std::make_shared<NvmDevice>(profile));

    ExternalForwardGraph striped{
        forward, devices, dir + "/d" + std::to_string(device_count)};
    GraphStorage storage;
    storage.forward_external = &striped;
    storage.backward_dram = &backward;
    HybridBfsRunner runner{
        storage,
        NumaTopology::with_total_threads(
            static_cast<std::size_t>(config.env.numa_nodes), pool.size()),
        pool};

    BfsConfig bfs;
    bfs.mode = BfsMode::TopDownOnly;
    std::vector<double> teps;
    const int roots = std::max(2, config.env.roots / 4);
    for (auto& device : devices) device->stats().reset();
    for (int i = 0; i < roots; ++i)
      teps.push_back(runner.run(root, bfs).teps);

    double max_queue = 0.0;
    double await_sum = 0.0;
    for (const auto& device : devices) {
      const IoStatsSnapshot s = device->stats().snapshot();
      max_queue = std::max(max_queue, s.avg_queue_length);
      await_sum += s.await_ms;
    }
    table.add_row({std::to_string(device_count),
                   format_teps(compute_stats(std::move(teps)).median),
                   format_fixed(max_queue, 2),
                   format_fixed(await_sum / static_cast<double>(device_count),
                                3)});
  }
  table.print();
  std::printf(
      "\nexpected shape: per-device queue length falls ~linearly with D "
      "(the 'more NVM cards' upgrade path for the paper's Figure-12 "
      "bottleneck). TEPS follows only when the device — not the CPU — is "
      "the binding constraint; on a single-core host the CPU saturates "
      "first, so the queue column is the meaningful one here.\n");
  std::filesystem::remove_all(dir);
  return 0;
}
