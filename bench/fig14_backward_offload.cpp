// Figure 14: partial offload of the BACKWARD graph (Section VI-E) — keep
// only the first k edges of each vertex in DRAM, stream the rest from NVM,
// and measure (a) how much backward-graph DRAM is saved and (b) what share
// of bottom-up edge accesses actually hit the NVM remainder.
//
// Paper findings: k=2 saves 2.6% of the graph DRAM but sends 38.2% of edge
// accesses to NVM; k=32 saves 15.1% with only 0.7% of accesses on NVM —
// i.e. the bottom-up early exit almost always terminates within the first
// few dozen neighbors, so the adjacency *tails* (the bulk of hub storage)
// are nearly free to offload. Expected shape: NVM access share collapses
// rapidly with k while the DRAM saving grows.
//
// NOTE on the saving's sign: at the paper's SCALE 27 the saving is quoted
// against the *total graph size*; we report the backward-graph-local
// saving, which is larger, plus the paper-style fraction for reference.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

using namespace sembfs;
using namespace sembfs::bench;

int main() {
  const BenchConfig config = BenchConfig::resolve();
  print_header(config,
               "Figure 14 — backward-graph partial offload (k DRAM "
               "edges/vertex)",
               "k=2: -2.6% DRAM, 38.2% accesses on NVM | k=32: -15.1% DRAM, "
               "0.7% accesses on NVM");

  ThreadPool pool{static_cast<std::size_t>(config.env.threads)};
  AsciiTable table({"k (DRAM edges/vertex)", "BG DRAM saved",
                    "graph DRAM saved", "edge accesses on NVM",
                    "median TEPS"});
  CsvWriter csv({"k", "bg_dram_saved_pct", "graph_dram_saved_pct",
                 "nvm_access_pct", "median_teps"});

  // Baseline: full backward graph in DRAM.
  Scenario base = Scenario::dram_only();
  Graph500Instance baseline = make_instance(config, base, pool);
  const double full_backward =
      static_cast<double>(baseline.backward().byte_size());
  const double full_graph =
      static_cast<double>(baseline.graph_dram_bytes());

  // The switch rule thresholds on n/alpha, so the paper's alpha values only
  // make sense at the paper's n. Scale alpha so the top-down->bottom-up
  // switch fires at a frontier of ~n/512 vertices — the fat-frontier regime
  // in which the paper measures backward-graph access locality.
  BfsConfig bfs;
  bfs.policy.alpha =
      std::max(2.0, static_cast<double>(baseline.vertex_count()) / 512.0);
  bfs.policy.beta = bfs.policy.alpha;

  for (const std::int64_t k : {2, 4, 8, 16, 32, 64}) {
    Scenario scenario = Scenario::dram_only();
    scenario.backward_dram_edges = k;
    // Partial offload needs a device; use the PCIe flash profile.
    scenario.nvm_profile = DeviceProfile::pcie_flash();
    Graph500Instance instance = make_instance(config, scenario, pool);
    HybridBackwardGraph* hybrid = instance.hybrid_backward();
    hybrid->reset_counters();

    const BenchmarkRun run = run_graph500_bfs_phase(
        instance, bfs, config.env.roots, /*validate=*/false, 0xbf5);

    const double dram_now = static_cast<double>(hybrid->dram_byte_size());
    const double bg_saved = (1.0 - dram_now / full_backward) * 100.0;
    const double graph_saved =
        (full_backward - dram_now) / full_graph * 100.0;
    const double nvm_edges =
        static_cast<double>(hybrid->nvm_edges_examined());
    const double total_edges =
        nvm_edges + static_cast<double>(hybrid->dram_edges_examined());
    const double nvm_pct =
        total_edges > 0.0 ? nvm_edges / total_edges * 100.0 : 0.0;

    table.add_row({std::to_string(k), format_fixed(bg_saved, 1) + "%",
                   format_fixed(graph_saved, 1) + "%",
                   format_fixed(nvm_pct, 1) + "%",
                   format_teps(run.output.score())});
    csv.add_row({std::to_string(k), format_fixed(bg_saved, 2),
                 format_fixed(graph_saved, 2), format_fixed(nvm_pct, 2),
                 format_fixed(run.output.score(), 0)});
  }
  table.print();
  std::printf("\nexpected shape: 'edge accesses on NVM' collapses as k "
              "grows (paper: 38.2%% at k=2 -> 0.7%% at k=32) while the "
              "DRAM saving rises.\n");

  maybe_write_csv(config, "fig14_backward_offload", csv);
  return 0;
}
