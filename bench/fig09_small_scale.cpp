// Figure 9: the same scenario comparison one SCALE smaller (paper: SCALE 26
// instead of 27), where all data fits the reduced DRAM budget.
//
// Paper finding: the shapes match Figure 8, but DRAM+PCIeFlash becomes
// *competitive with DRAM-only* — with a well-placed switch only a few
// top-down levels ever touch the NVM, so on a smaller problem the NVM
// penalty nearly vanishes. Expected shape here: the PCIeFlash-vs-DRAM gap
// at the best setting is clearly smaller at SCALE-1 than at SCALE.
#include <cstdio>

#include "bench_common.hpp"

using namespace sembfs;
using namespace sembfs::bench;

namespace {

// Best TEPS across the paper grid for one scenario at one scale.
double best_over_grid(const BenchConfig& config, const Scenario& scenario,
                      ThreadPool& pool, int scale, CsvWriter& csv) {
  Graph500Instance instance =
      make_instance(config, scenario, pool, scale);
  double best = 0.0;
  for (const AlphaBeta& ab : paper_alpha_beta_grid()) {
    BfsConfig bfs;
    bfs.policy.alpha = ab.alpha;
    bfs.policy.beta = ab.beta;
    const double teps = median_teps(instance, bfs, config.env.roots);
    csv.add_row({scenario.name, std::to_string(scale), ab.label,
                 format_fixed(teps, 0)});
    best = std::max(best, teps);
  }
  return best;
}

}  // namespace

int main() {
  BenchConfig config = BenchConfig::resolve();
  // This is a device-sensitive TEPS comparison: default to the
  // full-fidelity device model (cheap here — the tuned hybrid rarely
  // touches the device). SEMBFS_TIME_SCALE still overrides.
  config.time_scale = env_double("SEMBFS_TIME_SCALE", 1.0);
  print_header(config,
               "Figure 9 — SCALE-1 comparison (paper: SCALE 26 vs 27)",
               "at the smaller scale DRAM+PCIeFlash is competitive with "
               "DRAM-only; only a few top-down levels touch NVM");

  ThreadPool pool{static_cast<std::size_t>(config.env.threads)};
  const int big = config.env.scale;
  const int small = big - 1;

  CsvWriter csv({"scenario", "scale", "setting", "median_teps"});
  AsciiTable table({"scenario", "best @ SCALE " + std::to_string(small),
                    "best @ SCALE " + std::to_string(big),
                    "gap vs DRAM (small)", "gap vs DRAM (big)"});

  double dram_small = 0.0;
  double dram_big = 0.0;
  std::vector<std::array<double, 2>> rows;
  std::vector<std::string> names;
  for (const Scenario& scenario :
       {Scenario::dram_only(), Scenario::dram_pcie_flash(),
        Scenario::dram_ssd()}) {
    const double at_small =
        best_over_grid(config, scenario, pool, small, csv);
    const double at_big = best_over_grid(config, scenario, pool, big, csv);
    if (scenario.kind == ScenarioKind::DramOnly) {
      dram_small = at_small;
      dram_big = at_big;
    }
    rows.push_back({at_small, at_big});
    names.push_back(scenario.name);
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    table.add_row(
        {names[i], format_teps(rows[i][0]), format_teps(rows[i][1]),
         format_fixed((rows[i][0] / dram_small - 1.0) * 100.0, 1) + "%",
         format_fixed((rows[i][1] / dram_big - 1.0) * 100.0, 1) + "%"});
  }
  table.print();
  std::printf("\nexpected shape: the PCIeFlash gap column shrinks at the "
              "smaller scale (paper: near-zero at SCALE 26).\n");

  maybe_write_csv(config, "fig09_small_scale", csv);
  return 0;
}
