// Extension: incremental BFS repair vs full recomputation on a mutating
// graph (the PR-9 mutable layer, docs/MUTATIONS.md).
//
// The serving engine keeps hot-root traversals cached; when an
// insert-only batch publishes, it can either recompute each cached root
// from scratch or patch the cached level/parent arrays with the repair
// kernel (bfs/repair.hpp), which seeds only the inserted endpoints and
// relaxes ascending waves through the word-skip sweep. This bench
// measures that trade across batch sizes: repair must win on small
// batches (the production arrival pattern) and the crossover point is
// the number worth tracking over time (BENCH_dynamic.json in CI).
//
// Every repaired array is asserted level-exact against the from-scratch
// traversal of the same snapshot before its timing is reported — a wrong
// fast path would be worse than no fast path.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "bench_common.hpp"
#include "bfs/repair.hpp"
#include "graph/kronecker.hpp"
#include "graph/mutable_graph.hpp"
#include "util/timer.hpp"

using namespace sembfs;
using namespace sembfs::bench;

namespace {

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

std::string fmt(double value, const char* spec) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), spec, value);
  return buffer;
}

std::vector<EdgeOp> insert_batch(std::mt19937_64& rng, Vertex n,
                                 int count) {
  std::uniform_int_distribution<Vertex> pick{0, n - 1};
  std::vector<EdgeOp> ops;
  ops.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const Vertex u = pick(rng);
    Vertex v = pick(rng);
    while (v == u) v = pick(rng);
    ops.push_back(EdgeOp::insert(u, v));
  }
  return ops;
}

}  // namespace

int main() {
  BenchConfig config = BenchConfig::resolve();
  print_header(config,
               "Extension — incremental BFS repair vs recompute "
               "(dynamic graph)",
               "patching a cached traversal after an insert-only batch "
               "must beat a from-scratch BFS on small batches; every "
               "repaired array is verified level-exact first");

  ThreadPool pool{static_cast<std::size_t>(config.env.threads)};
  const NumaTopology topology = NumaTopology::with_total_threads(
      static_cast<std::size_t>(config.env.numa_nodes),
      static_cast<std::size_t>(config.env.threads));

  KroneckerParams params;
  params.scale = config.env.scale;
  params.edge_factor = config.env.edge_factor;
  params.seed = config.env.seed;
  EdgeList base = generate_kronecker(params, pool);
  const Vertex n = base.vertex_count();

  MutableGraphConfig mg;
  mg.numa_nodes = static_cast<std::size_t>(config.env.numa_nodes);
  MutableGraph graph{std::move(base), mg, pool};

  Vertex root = 0;
  while (graph.snapshot()->base().backward().neighbors(root).empty()) ++root;

  AsciiTable table({"batch", "repair ms", "recompute ms", "speedup",
                    "relaxed", "newly reached"});
  CsvWriter csv({"batch", "repair_ms", "recompute_ms", "speedup",
                 "relaxed", "newly_reached"});

  std::mt19937_64 rng{config.env.seed};
  constexpr int kTrials = 3;
  bool all_exact = true;
  for (const int batch : {8, 32, 128, 512}) {
    std::vector<double> repair_ms;
    std::vector<double> recompute_ms;
    std::int64_t relaxed = 0;
    std::int64_t newly_reached = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      // Baseline traversal of the sealed base (the "cached" result).
      const auto before = graph.snapshot();
      HybridBfsRunner base_runner{before->storage(), topology, pool};
      const BfsResult cached = base_runner.run(root, BfsConfig{});

      // One insert-only publish on top of it.
      graph.apply(insert_batch(rng, n, batch));
      const auto after = graph.snapshot();

      // Full recompute: a fresh delta-aware BFS of the merged view.
      HybridBfsRunner merged_runner{after->storage(), topology, pool};
      Timer recompute_timer;
      const BfsResult recomputed = merged_runner.run(root, BfsConfig{});
      recompute_ms.push_back(recompute_timer.seconds() * 1e3);

      // Repair: patch the cached arrays through the inserted endpoints.
      std::vector<std::int32_t> level = cached.level;
      std::vector<Vertex> parent = cached.parent;
      Timer repair_timer;
      const RepairOutcome outcome = repair_bfs_levels(
          after->base().backward(), *after->delta(), root, level, parent);
      repair_ms.push_back(repair_timer.seconds() * 1e3);
      if (!outcome.repaired) {
        std::fprintf(stderr, "repair declined: %s\n", outcome.reason);
        return 1;
      }
      relaxed = outcome.relaxed;
      newly_reached = outcome.newly_reached;
      if (level != recomputed.level) {
        std::fprintf(stderr,
                     "repair mismatch at batch=%d trial=%d — wrong fast "
                     "path\n",
                     batch, trial);
        all_exact = false;
      }
      // Fold the batch into the base so the next trial layers over a
      // sealed graph again (delta stays one-batch deep throughout).
      graph.compact();
    }
    const double rep = median(repair_ms);
    const double rec = median(recompute_ms);
    const double speedup = rep > 0.0 ? rec / rep : 0.0;
    table.add_row({std::to_string(batch), fmt(rep, "%.3f"),
                   fmt(rec, "%.3f"), fmt(speedup, "%.2fx"),
                   std::to_string(relaxed),
                   std::to_string(newly_reached)});
    csv.add_row({std::to_string(batch), std::to_string(rep),
                 std::to_string(rec), std::to_string(speedup),
                 std::to_string(relaxed), std::to_string(newly_reached)});
    // Machine-parseable lines for the CI BENCH_dynamic.json emitter.
    std::printf("dynamic_batch%d_repair_ms: %.4f\n", batch, rep);
    std::printf("dynamic_batch%d_recompute_ms: %.4f\n", batch, rec);
    std::printf("dynamic_batch%d_speedup: %.3f\n", batch, speedup);
  }

  table.print();
  maybe_write_csv(config, "extension_dynamic", csv);
  std::printf("dynamic_exact: %s\n", all_exact ? "ok" : "MISMATCH");
  return all_exact ? 0 : 1;
}
