// Extension: the vertex-program engine vs the bespoke BFS driver, plus
// whole-graph analytics timings.
//
// PR-7 extracts the per-level loop out of BfsSession into a generic
// ProgramSession driving VertexPrograms (src/engine). BFS re-expressed as
// a program delegates every superstep to the SAME PR-4 kernels, so the
// refactor's acceptance bar is *parity*: engine-BFS median step time
// within 10% of the session path on the same roots (any more would mean
// the abstraction taxes the hot loop).
//
// The payoff rows are the programs BFS machinery could not serve before:
// label-propagation connected components, synchronous PageRank, and
// triangle counting — each timed over the DRAM and semi-external
// (pcie_flash) scenarios through the identical IoScheduler/ChunkCache
// path the paper's BFS uses.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "engine/bfs_program.hpp"
#include "engine/components_program.hpp"
#include "engine/pagerank_program.hpp"
#include "engine/program_session.hpp"
#include "engine/triangle_program.hpp"

using namespace sembfs;
using namespace sembfs::bench;

namespace {

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

struct AnalyticsRow {
  double seconds = 0.0;
  std::int32_t supersteps = 0;
  std::uint64_t nvm_requests = 0;
};

AnalyticsRow run_program(engine::VertexProgram& program,
                         Graph500Instance& instance, ThreadPool& pool,
                         const BfsConfig& bfs) {
  engine::ProgramSession session{program, instance.storage(),
                                 instance.topology(), pool, bfs};
  session.run();
  AnalyticsRow row;
  row.seconds = session.seconds();
  row.supersteps = session.supersteps_executed();
  row.nvm_requests = session.nvm_requests();
  return row;
}

}  // namespace

int main() {
  BenchConfig config = BenchConfig::resolve();
  print_header(config,
               "Extension — vertex-program engine (BFS parity + analytics)",
               "engine-driven BFS must match the bespoke session within "
               "10% median step time; CC / PageRank / triangle counting "
               "then run over the same semi-external storage path");

  ThreadPool pool{static_cast<std::size_t>(config.env.threads)};
  const int roots = static_cast<int>(env_int("SEMBFS_ENGINE_ROOTS", 8));

  AsciiTable parity({"scenario", "session ms/step", "engine ms/step",
                     "engine/session"});
  CsvWriter csv({"scenario", "program", "seconds", "supersteps",
                 "ms_per_step", "nvm_requests"});

  for (const Scenario& scenario :
       {Scenario::dram_only(), Scenario::dram_pcie_flash()}) {
    Graph500Instance instance = make_instance(config, scenario, pool);
    BfsConfig bfs;

    // --- BFS parity: same roots through both drivers ---
    const std::vector<Vertex> root_set =
        instance.select_roots(roots, config.env.seed);
    HybridBfsRunner runner{instance.storage(), instance.topology(), pool};
    std::vector<double> session_step_ms;
    std::vector<double> engine_step_ms;
    for (const Vertex root : root_set) {
      const BfsResult result = runner.run(root, bfs);
      if (result.depth > 0)
        session_step_ms.push_back(result.seconds * 1e3 / result.depth);

      engine::BfsProgram program{root};
      engine::ProgramSession session{program, instance.storage(),
                                     instance.topology(), pool, bfs};
      session.run();
      if (session.supersteps_executed() > 0)
        engine_step_ms.push_back(session.seconds() * 1e3 /
                                 session.supersteps_executed());
    }
    const double session_ms = median(session_step_ms);
    const double engine_ms = median(engine_step_ms);
    const double ratio = session_ms > 0.0 ? engine_ms / session_ms : 0.0;
    parity.add_row({scenario.name, format_fixed(session_ms, 3),
                    format_fixed(engine_ms, 3), format_fixed(ratio, 3)});
    csv.add_row({scenario.name, "bfs_session", format_fixed(session_ms, 4),
                 "0", format_fixed(session_ms, 4), "0"});
    csv.add_row({scenario.name, "bfs_engine", format_fixed(engine_ms, 4),
                 "0", format_fixed(engine_ms, 4), "0"});

    // --- whole-graph analytics through the engine ---
    engine::ComponentsProgram cc;
    const AnalyticsRow cc_row = run_program(cc, instance, pool, bfs);
    engine::PageRankProgram pagerank{engine::PageRankOptions{}};
    const AnalyticsRow pr_row = run_program(pagerank, instance, pool, bfs);
    engine::TriangleProgram tc;
    const AnalyticsRow tc_row = run_program(tc, instance, pool, bfs);
    for (const auto& [name, row] :
         {std::pair<const char*, const AnalyticsRow&>{"components", cc_row},
          {"pagerank", pr_row},
          {"triangles", tc_row}}) {
      csv.add_row({scenario.name, name, format_fixed(row.seconds, 4),
                   std::to_string(row.supersteps),
                   format_fixed(row.supersteps > 0
                                    ? row.seconds * 1e3 / row.supersteps
                                    : 0.0,
                                4),
                   std::to_string(row.nvm_requests)});
    }
    std::printf("%s analytics: cc %.3fs/%d steps, pagerank %.3fs/%d iters, "
                "tc %.3fs/%d slices\n",
                scenario.name.c_str(), cc_row.seconds, cc_row.supersteps,
                pr_row.seconds, pr_row.supersteps, tc_row.seconds,
                tc_row.supersteps);
  }

  std::printf("\nengine vs session BFS (median ms per level, %d roots):\n",
              roots);
  parity.print();
  std::printf("acceptance: engine/session <= 1.10 — the program "
              "abstraction may not tax the kernel hot loop.\n");
  maybe_write_csv(config, "extension_engine", csv);
  return 0;
}
