#include "bench_common.hpp"

#include <cstdio>

namespace sembfs::bench {

BenchConfig BenchConfig::resolve() {
  BenchConfig config;
  config.env = BenchEnv::resolve();
  config.time_scale = env_double("SEMBFS_TIME_SCALE", 0.1);
  config.csv_dir = env_string("SEMBFS_CSV_DIR", "");
  return config;
}

void print_header(const BenchConfig& config, const std::string& figure,
                  const std::string& paper_summary) {
  std::printf("================================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("paper: %s\n", paper_summary.c_str());
  std::printf(
      "emulation: SCALE=%d edgefactor=%d roots=%d threads=%d "
      "numa_nodes=%d device_time_scale=%.3g workdir=%s chunk_format=%s\n",
      config.env.scale, config.env.edge_factor, config.env.roots,
      config.env.threads, config.env.numa_nodes, config.time_scale,
      config.env.workdir.c_str(), config.env.chunk_format.c_str());
  std::printf(
      "note: absolute TEPS are not comparable to the paper's 48-core\n"
      "machine; compare orderings/ratios. Override knobs via SEMBFS_SCALE,\n"
      "SEMBFS_ROOTS, SEMBFS_THREADS, SEMBFS_NUMA_NODES, SEMBFS_TIME_SCALE.\n");
  std::printf("================================================================\n");
}

std::vector<AlphaBeta> paper_alpha_beta_grid() {
  std::vector<AlphaBeta> grid;
  for (const double alpha : {1e4, 1e5, 1e6}) {
    for (const double factor : {10.0, 1.0, 0.1}) {
      AlphaBeta ab;
      ab.alpha = alpha;
      ab.beta = alpha * factor;
      char label[64];
      std::snprintf(label, sizeof label, "a=%s b=%.3gA",
                    format_scientific(alpha).c_str(), factor);
      ab.label = label;
      grid.push_back(ab);
    }
  }
  return grid;
}

Graph500Instance make_instance(const BenchConfig& config,
                               const Scenario& scenario, ThreadPool& pool,
                               int scale_override) {
  InstanceConfig ic;
  ic.kronecker.scale =
      scale_override > 0 ? scale_override : config.env.scale;
  ic.kronecker.edge_factor = config.env.edge_factor;
  ic.kronecker.seed = config.env.seed;
  ic.scenario = scenario;
  ic.scenario.time_scale = config.time_scale;
  ic.numa_nodes = static_cast<std::size_t>(config.env.numa_nodes);
  ic.workdir = config.env.workdir;
  // Unknown names fall back to raw rather than aborting: the bench harness
  // loops over every binary and a typo'd env var should not kill the run.
  ic.chunk_format = parse_chunk_format(
                        std::string_view{config.env.chunk_format})
                        .value_or(ChunkFormat::kRaw);
  return Graph500Instance{ic, pool};
}

double median_teps(Graph500Instance& instance, const BfsConfig& bfs,
                   int roots, std::uint64_t root_seed) {
  const BenchmarkRun run =
      run_graph500_bfs_phase(instance, bfs, roots, /*validate=*/false,
                             root_seed);
  return run.output.score();
}

void maybe_write_csv(const BenchConfig& config, const std::string& name,
                     const CsvWriter& csv) {
  if (config.csv_dir.empty()) return;
  const std::string path = config.csv_dir + "/" + name + ".csv";
  if (csv.write_file(path))
    std::printf("csv: %s\n", path.c_str());
  else
    std::printf("csv: FAILED to write %s\n", path.c_str());
}

}  // namespace sembfs::bench
