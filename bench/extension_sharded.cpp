// Sharded semi-external BFS (ROADMAP item 3: 2D edge partitioning over
// per-shard NVM stacks, compressed frontier exchange).
//
// Three claims this bench demonstrates:
//  1. Capacity — the external CSR is split across shards, so the largest
//     per-shard NVM footprint shrinks ~linearly with the shard count: a
//     SCALE whose block store exceeds one emulated node's budget fits
//     once sharded.
//  2. Communication — top-down sends one claim per cut edge while
//     bottom-up only exchanges frontier membership, so the hybrid switch
//     collapses per-level remote bytes (the multi-node analogue of the
//     paper's NVM-request reduction).
//  3. Compression — the varint chunk format shrinks the per-shard device
//     footprint on top of the partitioning.
#include <cstdio>

#include "bench_common.hpp"
#include "shard/sharded_bfs.hpp"

using namespace sembfs;
using namespace sembfs::bench;
using namespace sembfs::shard;

int main() {
  const BenchConfig config = BenchConfig::resolve();
  print_header(config,
               "Extension — sharded semi-external BFS (2D partition)",
               "future work of Section VIII; expected: per-shard NVM "
               "footprint shrinks with shard count and the hybrid switch "
               "collapses per-level remote bytes");

  Scenario scenario = Scenario::by_name("pcie_flash");
  scenario.time_scale = config.time_scale;
  const DeviceProfile profile = scenario.effective_profile();

  const std::size_t shard_counts[] = {4, 8, 16};
  ThreadPool pool{std::max<std::size_t>(
      16, static_cast<std::size_t>(config.env.threads))};

  KroneckerParams params;
  params.scale = config.env.scale;
  params.edge_factor = config.env.edge_factor;
  params.seed = config.env.seed;
  const EdgeList edges = generate_kronecker(params, pool);
  const Vertex root = [&] {
    // Any vertex with edges works; scan for the first.
    std::vector<std::int64_t> degree(
        static_cast<std::size_t>(params.vertex_count()), 0);
    for (const Edge& e : edges.edges()) {
      if (e.u == e.v) continue;
      ++degree[static_cast<std::size_t>(e.u)];
      ++degree[static_cast<std::size_t>(e.v)];
    }
    for (std::size_t v = 0; v < degree.size(); ++v)
      if (degree[v] > 0) return static_cast<Vertex>(v);
    return Vertex{0};
  }();

  ShardedBfsConfig hybrid;
  hybrid.policy.alpha = 16;  // switch at the frontier peak, not level 2
  hybrid.policy.beta = 1e5;

  // TEPS and footprint vs shard count, both chunk formats.
  AsciiTable table({"shards", "grid", "format", "median TEPS",
                    "remote bytes/BFS", "max shard NVM", "total NVM",
                    "depth"});
  for (const ChunkFormat format :
       {ChunkFormat::kRaw, ChunkFormat::kVarint}) {
    for (const std::size_t shards : shard_counts) {
      ShardNodeConfig node_config;
      node_config.format = format;
      const std::string dir = config.env.workdir + "/sharded_bench/" +
                              std::to_string(shards) +
                              (format == ChunkFormat::kRaw ? "r" : "v");
      ShardedBfs bfs{edges, shards, pool, profile, dir, node_config};

      std::vector<double> teps;
      std::uint64_t bytes = 0;
      std::int32_t depth = 0;
      const int roots = std::max(2, config.env.roots / 2);
      for (int i = 0; i < roots; ++i) {
        const ShardedBfsResult r = bfs.run(root, hybrid);
        teps.push_back(r.teps);
        bytes += r.total_remote_bytes;
        depth = r.depth;
      }
      const auto& grid = bfs.grid();
      table.add_row(
          {std::to_string(shards),
           std::to_string(grid.rows()) + "x" + std::to_string(grid.cols()),
           format == ChunkFormat::kRaw ? "raw" : "varint",
           format_teps(compute_stats(std::move(teps)).median),
           format_bytes(bytes / static_cast<std::uint64_t>(roots)),
           format_bytes(bfs.max_shard_nvm_byte_size()),
           format_bytes(bfs.nvm_byte_size()),
           std::to_string(depth)});
    }
    table.add_separator();
  }
  table.print();

  // Per-level communication profile of one hybrid run at 4 shards: the
  // claim-byte collapse at the direction switch is the payoff.
  std::printf("\nper-level communication (4 shards, raw, hybrid):\n");
  ShardNodeConfig node_config;
  ShardedBfs bfs{edges, 4, pool, profile,
                 config.env.workdir + "/sharded_bench/levels", node_config};
  const ShardedBfsResult run = bfs.run(root, hybrid);
  AsciiTable levels({"level", "direction", "frontier", "claimed",
                     "frontier B", "membership B", "claim B", "total B"});
  for (const ShardLevelStats& ls : run.levels) {
    levels.add_row({std::to_string(ls.level), direction_name(ls.direction),
                    std::to_string(ls.frontier_vertices),
                    std::to_string(ls.claimed_vertices),
                    format_bytes(ls.frontier_bytes),
                    format_bytes(ls.membership_bytes),
                    format_bytes(ls.claim_bytes),
                    format_bytes(ls.remote_bytes)});
  }
  levels.print();

  if (!config.csv_dir.empty()) {
    CsvWriter csv({"level", "direction", "frontier", "claimed",
                   "frontier_bytes", "membership_bytes", "claim_bytes",
                   "remote_bytes"});
    for (const ShardLevelStats& ls : run.levels)
      csv.add_row({std::to_string(ls.level),
                   direction_name(ls.direction),
                   std::to_string(ls.frontier_vertices),
                   std::to_string(ls.claimed_vertices),
                   std::to_string(ls.frontier_bytes),
                   std::to_string(ls.membership_bytes),
                   std::to_string(ls.claim_bytes),
                   std::to_string(ls.remote_bytes)});
    maybe_write_csv(config, "extension_sharded", csv);
  }
  return 0;
}
