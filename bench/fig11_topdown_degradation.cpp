// Figure 11: per-level slowdown of the *top-down* direction when the
// forward graph lives on NVM, as a function of the level's average searched
// degree (log-log in the paper), at alpha=1e4, beta=10a.
//
// Paper findings: DRAM+PCIeFlash degrades between 1.2x and 5758.5x,
// DRAM+SSD between 2.8x and 123482.6x, with the catastrophic ratios at
// average degree ~1 — the last top-down levels search huge numbers of
// degree-1 stragglers, each costing a full device round trip for almost no
// useful work. First top-down levels (avg degree ~11k) degrade least.
// Expected shape: ratio_SSD > ratio_PCIeFlash everywhere, both worst near
// degree ~1 and mildest at the highest-degree level.
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_common.hpp"

using namespace sembfs;
using namespace sembfs::bench;

namespace {

struct LevelSample {
  double avg_degree;
  double dram_seconds;
  double nvm_seconds;
};

}  // namespace

int main() {
  BenchConfig config = BenchConfig::resolve();
  // This figure measures the device penalty itself, so the device model
  // runs at full fidelity by default (SEMBFS_TIME_SCALE still overrides).
  config.time_scale = env_double("SEMBFS_TIME_SCALE", 1.0);
  print_header(config,
               "Figure 11 — top-down slowdown vs average degree (a=1e4, "
               "b=10a)",
               "PCIeFlash 1.2x..5758x, SSD 2.8x..123483x; worst near "
               "degree ~1 (late top-down levels)");

  ThreadPool pool{static_cast<std::size_t>(config.env.threads)};
  BfsConfig bfs;
  bfs.policy.alpha = 1e4;
  bfs.policy.beta = 1e5;  // 10 * alpha

  Graph500Instance dram = make_instance(config, Scenario::dram_only(), pool);
  const auto roots = dram.select_roots(config.env.roots, 0xbf5);

  CsvWriter csv({"device", "avg_degree", "dram_seconds", "nvm_seconds",
                 "slowdown"});
  for (const Scenario& scenario :
       {Scenario::dram_pcie_flash(), Scenario::dram_ssd()}) {
    Graph500Instance nvm = make_instance(config, scenario, pool);
    std::vector<LevelSample> samples;

    for (const Vertex root : roots) {
      const BfsResult a = dram.run_bfs(root, bfs);
      const BfsResult b = nvm.run_bfs(root, bfs);
      // Same root + same policy inputs -> identical level structure.
      const std::size_t levels = std::min(a.levels.size(), b.levels.size());
      for (std::size_t i = 0; i < levels; ++i) {
        if (a.levels[i].direction != Direction::TopDown) continue;
        if (a.levels[i].frontier_vertices == 0) continue;
        samples.push_back({a.levels[i].avg_degree, a.levels[i].seconds,
                           b.levels[i].seconds});
      }
    }

    std::sort(samples.begin(), samples.end(),
              [](const LevelSample& x, const LevelSample& y) {
                return x.avg_degree < y.avg_degree;
              });

    std::printf("\n-- %s (per top-down level, %zu samples) --\n",
                scenario.name.c_str(), samples.size());
    AsciiTable table({"avg degree", "DRAM time (ms)", "NVM time (ms)",
                      "slowdown"});
    double min_ratio = 1e300;
    double max_ratio = 0.0;
    for (const LevelSample& s : samples) {
      const double ratio =
          s.dram_seconds > 0.0 ? s.nvm_seconds / s.dram_seconds : 0.0;
      if (ratio > 0.0) {
        min_ratio = std::min(min_ratio, ratio);
        max_ratio = std::max(max_ratio, ratio);
      }
      table.add_row({format_fixed(s.avg_degree, 1),
                     format_fixed(s.dram_seconds * 1e3, 3),
                     format_fixed(s.nvm_seconds * 1e3, 3),
                     format_fixed(ratio, 1) + "x"});
      csv.add_row({scenario.nvm_profile.name, format_fixed(s.avg_degree, 2),
                   format_fixed(s.dram_seconds, 6),
                   format_fixed(s.nvm_seconds, 6), format_fixed(ratio, 2)});
    }
    table.print();
    if (max_ratio > 0.0)
      std::printf("slowdown range: %.1fx .. %.1fx (paper: %s)\n", min_ratio,
                  max_ratio,
                  scenario.kind == ScenarioKind::DramPcieFlash
                      ? "1.2x .. 5758.5x"
                      : "2.8x .. 123482.6x");
  }

  maybe_write_csv(config, "fig11_topdown_degradation", csv);
  return 0;
}
