// Figure 13: avgrq-sz — the iostat average request size, in 512-byte
// sectors, of the requests issued to the NVM during BFS.
//
// Paper finding: avgrq-sz averages 22.6 sectors (PCIeFlash) and 22.7 (SSD)
// — identical across devices, because request size is a property of the
// *workload* (the 4 KiB-chunked CSR reads over a power-law degree
// distribution), not of the device. The paper concludes small requests
// dominate and an aggregation layer (libaio) could help. Expected shape
// here: the two devices report nearly the same avgrq-sz, bounded by the
// 8-sector (4 KiB) chunk ceiling, and the value is insensitive to alpha.
#include <cstdio>
#include <map>

#include "bench_common.hpp"

using namespace sembfs;
using namespace sembfs::bench;

int main() {
  BenchConfig config = BenchConfig::resolve();
  // Match the paper's 48 issuing threads (see fig12); avgrq-sz itself is
  // concurrency-insensitive, but this keeps the two iostat figures
  // directly comparable.
  config.env.threads = static_cast<int>(env_int("SEMBFS_THREADS", 48));
  print_header(config,
               "Figure 13 — avgrq-sz (sectors) of NVM requests during BFS",
               "22.6 sectors (PCIeFlash) vs 22.7 (SSD): request size is a "
               "workload property, identical across devices");

  ThreadPool pool{static_cast<std::size_t>(config.env.threads)};
  AsciiTable table({"scenario", "alpha", "requests", "sectors",
                    "avgrq-sz (sectors)", "avg request (bytes)"});
  CsvWriter csv({"scenario", "alpha", "requests", "sectors", "avgrq_sz"});

  std::map<std::string, std::vector<double>> by_scenario;
  for (const Scenario& scenario :
       {Scenario::dram_pcie_flash(), Scenario::dram_ssd()}) {
    Graph500Instance instance = make_instance(config, scenario, pool);
    for (const double alpha : {1e2, 1e4, 1e6}) {
      BfsConfig bfs;
      bfs.policy.alpha = alpha;
      bfs.policy.beta = alpha;
      const BenchmarkRun run = run_graph500_bfs_phase(
          instance, bfs, config.env.roots, /*validate=*/false, 0xbf5);
      table.add_row({scenario.name, format_scientific(alpha),
                     format_count(run.nvm_io.requests),
                     format_count(run.nvm_io.sectors),
                     format_fixed(run.nvm_io.avg_request_sectors, 2),
                     format_fixed(run.nvm_io.avg_request_sectors * 512, 0)});
      csv.add_row({scenario.name, format_scientific(alpha),
                   std::to_string(run.nvm_io.requests),
                   std::to_string(run.nvm_io.sectors),
                   format_fixed(run.nvm_io.avg_request_sectors, 3)});
      by_scenario[scenario.name].push_back(run.nvm_io.avg_request_sectors);
    }
    table.add_separator();
  }
  table.print();

  std::printf("\nexpected shape: both devices report the same avgrq-sz for "
              "the same alpha (paper: 22.6 vs 22.7). Our 4 KiB chunk cap "
              "bounds requests at 8 sectors; the paper's larger values "
              "include kernel-level merging our model omits — the "
              "device-independence is the reproduced property.\n");

  maybe_write_csv(config, "fig13_io_request_size", csv);
  return 0;
}
