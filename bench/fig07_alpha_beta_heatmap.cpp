// Figure 7: TEPS heatmap over the (alpha, beta) switching-parameter space,
// one panel per storage scenario.
//
// Paper findings: DRAM-only peaks at 5.12 GTEPS around alpha=1e4 b=10a;
// DRAM+PCIeFlash peaks at 4.22 GTEPS at alpha=1e6 b=1a (large alpha delays
// the switch less — fewer expensive top-down NVM levels); DRAM+SSD peaks at
// 2.76 GTEPS at alpha=1e5 b=0.1a. The expected *shape*: the NVM scenarios
// prefer larger alpha (switch to bottom-up earlier) than DRAM-only, and the
// SSD panel is uniformly below the PCIe flash panel.
#include <cstdio>

#include "bench_common.hpp"

using namespace sembfs;
using namespace sembfs::bench;

int main() {
  BenchConfig config = BenchConfig::resolve();
  // This is a device-sensitive TEPS comparison: default to the
  // full-fidelity device model (cheap here — the tuned hybrid rarely
  // touches the device). SEMBFS_TIME_SCALE still overrides.
  config.time_scale = env_double("SEMBFS_TIME_SCALE", 1.0);
  print_header(config,
               "Figure 7 — alpha x beta TEPS heatmaps, three scenarios",
               "peaks: DRAM 5.12 GTEPS @ a=1e4,b=10a | PCIeFlash 4.22 @ "
               "a=1e6,b=1a | SSD 2.76 @ a=1e5,b=0.1a");

  ThreadPool pool{static_cast<std::size_t>(config.env.threads)};
  const std::vector<double> alphas = {1e2, 1e3, 1e4, 1e5, 1e6};
  const std::vector<double> beta_factors = {10.0, 1.0, 0.1};

  CsvWriter csv({"scenario", "alpha", "beta", "median_teps"});
  for (const Scenario& scenario :
       {Scenario::dram_only(), Scenario::dram_pcie_flash(),
        Scenario::dram_ssd()}) {
    Graph500Instance instance = make_instance(config, scenario, pool);
    std::printf("\n-- %s --\n", scenario.describe().c_str());

    std::vector<std::string> headers = {"alpha \\ beta"};
    for (const double f : beta_factors)
      headers.push_back("b=" + format_fixed(f, 1) + "a");
    AsciiTable table(std::move(headers));

    double best = 0.0;
    std::string best_label;
    for (const double alpha : alphas) {
      std::vector<std::string> row = {format_scientific(alpha)};
      for (const double f : beta_factors) {
        BfsConfig bfs;
        bfs.policy.alpha = alpha;
        bfs.policy.beta = alpha * f;
        const double teps = median_teps(instance, bfs, config.env.roots);
        row.push_back(format_teps(teps));
        csv.add_row({scenario.name, format_scientific(alpha),
                     format_scientific(alpha * f), format_fixed(teps, 0)});
        if (teps > best) {
          best = teps;
          best_label = format_scientific(alpha) + ", b=" +
                       format_fixed(f, 1) + "a";
        }
      }
      table.add_row(std::move(row));
    }
    table.print();
    std::printf("peak: %s at alpha=%s\n", format_teps(best).c_str(),
                best_label.c_str());
  }

  maybe_write_csv(config, "fig07_alpha_beta_heatmap", csv);
  return 0;
}
