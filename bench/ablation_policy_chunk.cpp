// Ablation bench (DESIGN.md section 5): the design choices the paper fixes
// without sweeping —
//   (a) direction policy: the paper's frontier-count rule vs Beamer's
//       edge-count rule (SC'12),
//   (b) NVM read chunk size: the paper's 4 KiB vs smaller/larger chunks,
//   (c) top-down dequeue batch: the paper's 64 vs alternatives.
#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "graph/external_csr.hpp"

using namespace sembfs;
using namespace sembfs::bench;

int main() {
  const BenchConfig config = BenchConfig::resolve();
  print_header(config,
               "Ablations — switch policy, NVM chunk size, dequeue batch",
               "design constants the paper fixes: frontier-ratio policy, "
               "4 KiB chunks, 64-vertex batches");

  ThreadPool pool{static_cast<std::size_t>(config.env.threads)};

  // (a) Policy ablation, DRAM-only.
  {
    Graph500Instance instance =
        make_instance(config, Scenario::dram_only(), pool);
    AsciiTable table({"policy", "parameters", "median TEPS"});
    {
      BfsConfig bfs;
      bfs.policy.kind = PolicyKind::FrontierRatio;
      bfs.policy.alpha = 1e4;
      bfs.policy.beta = 1e5;
      table.add_row({"frontier-ratio (paper)", "a=1e4 b=10a",
                     format_teps(median_teps(instance, bfs,
                                             config.env.roots))});
    }
    {
      BfsConfig bfs;
      bfs.policy.kind = PolicyKind::EdgeRatio;
      bfs.policy.alpha = 14.0;  // Beamer's published constants
      bfs.policy.beta = 24.0;
      table.add_row({"edge-ratio (Beamer)", "a=14 b=24",
                     format_teps(median_teps(instance, bfs,
                                             config.env.roots))});
    }
    std::printf("\n(a) direction-switch policy, DRAM-only:\n");
    table.print();
  }

  // (b) Chunk-size ablation on the semi-external forward graph.
  {
    std::printf("\n(b) NVM read chunk size, DRAM+PCIeFlash, top-down-heavy "
                "(stresses the read path):\n");
    AsciiTable table({"chunk bytes", "median TEPS", "NVM requests/BFS"});
    for (const std::uint32_t chunk : {512u, 1024u, 4096u, 16384u, 65536u}) {
      InstanceConfig ic;
      ic.kronecker.scale = config.env.scale;
      ic.kronecker.edge_factor = config.env.edge_factor;
      ic.kronecker.seed = config.env.seed;
      ic.scenario = Scenario::dram_pcie_flash();
      ic.scenario.time_scale = config.time_scale;
      ic.numa_nodes = static_cast<std::size_t>(config.env.numa_nodes);
      ic.workdir = config.env.workdir + "/chunk" + std::to_string(chunk);
      ic.chunk_bytes = chunk;
      Graph500Instance instance{ic, pool};
      BfsConfig bfs;
      bfs.policy.alpha = 100.0;  // keep several top-down levels
      bfs.policy.beta = 100.0;
      const BenchmarkRun run = run_graph500_bfs_phase(
          instance, bfs, config.env.roots, false, 0xbf5);
      std::uint64_t requests = 0;
      for (const auto& r : run.runs) (void)r;
      requests = run.nvm_io.requests / run.runs.size();
      table.add_row({std::to_string(chunk),
                     format_teps(run.output.score()),
                     format_count(requests)});
      std::filesystem::remove_all(ic.workdir);
    }
    table.print();
  }

  // (c) Top-down dequeue batch size, DRAM-only.
  {
    Graph500Instance instance =
        make_instance(config, Scenario::dram_only(), pool);
    std::printf("\n(c) top-down dequeue batch (paper uses 64):\n");
    AsciiTable table({"batch", "median TEPS"});
    for (const int batch : {1, 8, 64, 512, 4096}) {
      BfsConfig bfs;
      bfs.mode = BfsMode::TopDownOnly;  // isolate the top-down path
      bfs.batch_size = batch;
      table.add_row({std::to_string(batch),
                     format_teps(median_teps(instance, bfs,
                                             config.env.roots))});
    }
    table.print();
  }
  return 0;
}
