// Extensions bench — the paper's future-work items, implemented and
// measured against the paper's own technique on the same simulated device:
//
//   1. I/O aggregation (Figure 13's conclusion: "we may exploit further
//      I/O performance of the devices by aggregating small I/O operations
//      such as libaio"): merge a dequeue batch's index/value reads into few
//      large requests. Expect fewer requests, larger avgrq-sz, higher TEPS
//      in top-down-heavy runs.
//   2. Degree-tiered forward placement ("further offloading graph data
//      especially with small edges"): short adjacency lists in DRAM, hubs
//      on NVM. Expect the Figure-11 degree~1 pathology to disappear at a
//      small DRAM cost.
#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "graph/tiered_forward.hpp"

using namespace sembfs;
using namespace sembfs::bench;

int main() {
  const BenchConfig config = BenchConfig::resolve();
  print_header(config,
               "Extensions — I/O aggregation + degree-tiered forward graph",
               "future work of Section VIII implemented; baselines are the "
               "paper's own 4 KiB-chunk offload");

  ThreadPool pool{static_cast<std::size_t>(config.env.threads)};
  const std::string dir = config.env.workdir + "/future";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // Shared graph + device (PCIe flash profile).
  KroneckerParams params;
  params.scale = config.env.scale;
  params.edge_factor = config.env.edge_factor;
  params.seed = config.env.seed;
  const EdgeList edges = generate_kronecker(params, pool);
  const VertexPartition partition{edges.vertex_count(),
                                  static_cast<std::size_t>(config.env.numa_nodes)};
  const ForwardGraph forward =
      ForwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const BackwardGraph backward =
      BackwardGraph::build(edges, partition, CsrBuildOptions{}, pool);

  DeviceProfile profile = DeviceProfile::pcie_flash();
  profile.time_scale = config.time_scale;
  auto device = std::make_shared<NvmDevice>(profile);

  ExternalForwardGraph external{forward, device, dir + "/ext"};
  TieredForwardGraph tiered{forward, /*degree_threshold=*/8, device,
                            dir + "/tiered", pool};

  const NumaTopology topology = NumaTopology::with_total_threads(
      static_cast<std::size_t>(config.env.numa_nodes), pool.size());

  Vertex root = 0;
  while (backward.neighbors(root).empty()) ++root;

  struct Variant {
    const char* name;
    GraphStorage storage;
    bool aggregate;
    std::uint64_t extra_dram;
  };
  GraphStorage ext_storage;
  ext_storage.forward_external = &external;
  ext_storage.backward_dram = &backward;
  GraphStorage tiered_storage;
  tiered_storage.forward_tiered = &tiered;
  tiered_storage.backward_dram = &backward;

  const Variant variants[] = {
      {"paper: 4 KiB chunked offload", ext_storage, false, 0},
      {"+ I/O aggregation (libaio-style)", ext_storage, true, 0},
      {"tiered forward (deg<=8 in DRAM)", tiered_storage, false,
       tiered.dram_byte_size()},
  };

  AsciiTable table({"variant", "median TEPS (TD-only)",
                    "NVM requests/BFS", "avgrq-sz (sectors)",
                    "forward DRAM bytes"});
  for (const Variant& variant : variants) {
    HybridBfsRunner runner{variant.storage, topology, pool};
    BfsConfig bfs;
    bfs.mode = BfsMode::TopDownOnly;  // stress the forward read path
    bfs.aggregate_io = variant.aggregate;

    std::vector<double> teps;
    std::uint64_t requests = 0;
    device->stats().reset();
    const int roots = std::max(2, config.env.roots / 2);
    for (int i = 0; i < roots; ++i) {
      const BfsResult r = runner.run(root, bfs);
      teps.push_back(r.teps);
      requests += r.nvm_requests;
    }
    const IoStatsSnapshot io = device->stats().snapshot();
    table.add_row(
        {variant.name, format_teps(compute_stats(std::move(teps)).median),
         format_count(requests / static_cast<std::uint64_t>(roots)),
         format_fixed(io.avg_request_sectors, 2),
         format_bytes(variant.extra_dram)});
  }
  table.print();

  std::printf(
      "\nexpected shapes: aggregation cuts requests and raises avgrq-sz "
      "(the paper's libaio hypothesis); the tiered layout cuts requests "
      "hardest (degree<=8 vertices dominate the frontier tail) at a small "
      "DRAM cost.\n");
  std::filesystem::remove_all(dir);
  return 0;
}
