// Workload ablation: how much of the hybrid BFS advantage is the
// power-law structure of Kronecker graphs?
//
// The bottom-up direction wins because skewed graphs put hubs in almost
// every adjacency list — the early exit fires after a couple of probes. On
// a uniform (Erdos-Renyi) graph with the same vertex/edge counts there are
// no hubs, so expect: (a) the hybrid-over-top-down speedup shrinks, and
// (b) the best alpha shifts toward later switching. This bounds the
// paper's technique to its intended domain (the Graph500 / social-network
// family) — a scope statement the paper itself does not measure.
#include <cstdio>

#include "bench_common.hpp"
#include "graph/uniform.hpp"

using namespace sembfs;
using namespace sembfs::bench;

namespace {

struct WorkloadResult {
  double hybrid_teps = 0.0;
  double top_down_teps = 0.0;
  double bottom_up_teps = 0.0;
  std::int64_t bu_scanned = 0;
  std::int64_t td_scanned = 0;
};

WorkloadResult measure(const EdgeList& edges, ThreadPool& pool, int roots,
                       std::size_t numa_nodes) {
  const VertexPartition partition{edges.vertex_count(), numa_nodes};
  const ForwardGraph forward =
      ForwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const BackwardGraph backward =
      BackwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  GraphStorage storage;
  storage.forward_dram = &forward;
  storage.backward_dram = &backward;
  HybridBfsRunner runner{
      storage, NumaTopology::with_total_threads(numa_nodes, pool.size()),
      pool};

  Vertex root = 0;
  while (backward.neighbors(root).empty()) ++root;

  const auto median_for = [&](BfsMode mode, WorkloadResult& out) {
    BfsConfig config;
    config.mode = mode;
    config.policy.alpha = 1e4;
    config.policy.beta = 1e5;
    std::vector<double> teps;
    for (int i = 0; i < roots; ++i) {
      const BfsResult r = runner.run(root, config);
      teps.push_back(r.teps);
      if (mode == BfsMode::Hybrid) {
        out.bu_scanned += r.scanned_edges_bottom_up;
        out.td_scanned += r.scanned_edges_top_down;
      }
    }
    return compute_stats(std::move(teps)).median;
  };

  WorkloadResult result;
  result.hybrid_teps = median_for(BfsMode::Hybrid, result);
  result.top_down_teps = median_for(BfsMode::TopDownOnly, result);
  result.bottom_up_teps = median_for(BfsMode::BottomUpOnly, result);
  return result;
}

}  // namespace

int main() {
  const BenchConfig config = BenchConfig::resolve();
  print_header(config,
               "Ablation — Kronecker (power law) vs uniform workload",
               "the hybrid's advantage is a property of skew; uniform "
               "graphs shrink it (scope boundary of the technique)");

  ThreadPool pool{static_cast<std::size_t>(config.env.threads)};
  const auto nodes = static_cast<std::size_t>(config.env.numa_nodes);

  KroneckerParams kron;
  kron.scale = config.env.scale;
  kron.edge_factor = config.env.edge_factor;
  kron.seed = config.env.seed;
  UniformParams uniform;
  uniform.scale = config.env.scale;
  uniform.edge_factor = config.env.edge_factor;
  uniform.seed = config.env.seed;

  const WorkloadResult k =
      measure(generate_kronecker(kron, pool), pool, config.env.roots, nodes);
  const WorkloadResult u =
      measure(generate_uniform(uniform, pool), pool, config.env.roots, nodes);

  AsciiTable table({"workload", "hybrid", "top-down only", "bottom-up only",
                    "hybrid / top-down"});
  const auto row = [&](const char* name, const WorkloadResult& r) {
    table.add_row({name, format_teps(r.hybrid_teps),
                   format_teps(r.top_down_teps),
                   format_teps(r.bottom_up_teps),
                   format_fixed(r.hybrid_teps / r.top_down_teps, 2) + "x"});
  };
  row("Kronecker (Graph500)", k);
  row("uniform (Erdos-Renyi)", u);
  table.print();

  std::printf("\nexpected shape: the hybrid/top-down ratio is larger on the "
              "Kronecker graph than on the uniform graph.\n");
  return 0;
}
