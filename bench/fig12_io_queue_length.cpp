// Figure 12: avgqu-sz — the iostat average queue length of requests issued
// to the NVM device during the BFS phase.
//
// Paper finding: avgqu-sz averages 36.1 on the PCIe flash and 56.1 on the
// SATA SSD — i.e. requests pile up waiting on both devices, worse on the
// slower SSD (fewer internal channels). Expected shape: SSD queue length >
// PCIe flash queue length, and both grow when the workload becomes more
// top-down-heavy (smaller alpha).
//
// Our avgqu-sz is computed exactly as iostat does — the time integral of
// the device queue occupancy divided by the observation window — from the
// device model's own accounting, no OS sampling needed.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "nvm/io_sampler.hpp"

using namespace sembfs;
using namespace sembfs::bench;

int main() {
  BenchConfig config = BenchConfig::resolve();
  // Queue depth is a concurrency phenomenon: the paper's machine issues
  // requests from 48 threads. Default to 48 (oversubscribed) workers here
  // so the device queues actually fill; SEMBFS_THREADS still overrides.
  config.env.threads = static_cast<int>(env_int("SEMBFS_THREADS", 48));
  print_header(config,
               "Figure 12 — avgqu-sz of NVM requests during BFS",
               "average queue length 36.1 (PCIeFlash) vs 56.1 (SSD); "
               "request waits are endemic on both devices");

  ThreadPool pool{static_cast<std::size_t>(config.env.threads)};
  const int heavy_roots = std::max(2, config.env.roots / 4);
  AsciiTable table({"scenario", "BFS mix", "requests", "avgqu-sz",
                    "await (ms)", "IOPS"});
  CsvWriter csv({"scenario", "mix", "requests", "avgqu_sz", "await_ms",
                 "iops"});

  struct Mix {
    const char* name;
    BfsMode mode;
    double alpha;
    double beta;
  };
  const Mix mixes[] = {
      {"hybrid a=1e4 b=10a", BfsMode::Hybrid, 1e4, 1e5},
      {"top-down heavy (a=10)", BfsMode::Hybrid, 10.0, 1.0},
      {"top-down only", BfsMode::TopDownOnly, 1e4, 1e5},
  };

  for (const Scenario& scenario :
       {Scenario::dram_pcie_flash(), Scenario::dram_ssd()}) {
    Graph500Instance instance = make_instance(config, scenario, pool);
    for (const Mix& mix : mixes) {
      BfsConfig bfs;
      bfs.mode = mix.mode;
      bfs.policy.alpha = mix.alpha;
      bfs.policy.beta = mix.beta;
      const bool heavy = mix.mode == BfsMode::TopDownOnly || mix.alpha < 1e3;
      const BenchmarkRun run = run_graph500_bfs_phase(
          instance, bfs, heavy ? heavy_roots : config.env.roots,
          /*validate=*/false, 0xbf5);
      table.add_row({scenario.name, mix.name,
                     format_count(run.nvm_io.requests),
                     format_fixed(run.nvm_io.avg_queue_length, 2),
                     format_fixed(run.nvm_io.await_ms, 3),
                     format_fixed(run.nvm_io.iops, 0)});
      csv.add_row({scenario.name, mix.name,
                   std::to_string(run.nvm_io.requests),
                   format_fixed(run.nvm_io.avg_queue_length, 3),
                   format_fixed(run.nvm_io.await_ms, 3),
                   format_fixed(run.nvm_io.iops, 0)});
    }
    table.add_separator();
  }
  table.print();
  std::printf("\nexpected shape: for the same mix, the SSD rows show a "
              "longer queue (paper: 56.1 vs 36.1); top-down-heavier mixes "
              "deepen both queues.\n");

  // The paper's figure is an iostat TIME SERIES over the benchmark run;
  // reproduce that view for one scenario with the windowed sampler.
  {
    std::printf("\niostat-style time series (DRAM+SSD, top-down only, "
                "windowed avgqu-sz):\n");
    Graph500Instance instance =
        make_instance(config, Scenario::dram_ssd(), pool);
    IoStatsSampler sampler{*instance.nvm_device(), 0.1};
    BfsConfig bfs;
    bfs.mode = BfsMode::TopDownOnly;
    sampler.start();
    run_graph500_bfs_phase(instance, bfs, heavy_roots, false, 0xbf5);
    sampler.stop();

    AsciiTable series({"t (s)", "requests", "avgqu-sz", "avgrq-sz"});
    // Downsample to <= 12 printed rows.
    const auto& samples = sampler.samples();
    const std::size_t stride = std::max<std::size_t>(1, samples.size() / 12);
    for (std::size_t i = 0; i < samples.size(); i += stride) {
      const IoSample& s = samples[i];
      series.add_row({format_fixed(s.t_seconds, 2),
                      format_count(s.requests),
                      format_fixed(s.avg_queue_length, 2),
                      format_fixed(s.avg_request_sectors, 2)});
    }
    series.print();
    std::printf("peak windowed avgqu-sz: %.2f (paper's SSD trace peaks "
                "near its 56.1 average)\n",
                sampler.peak_queue_length());
  }

  maybe_write_csv(config, "fig12_io_queue_length", csv);
  return 0;
}
