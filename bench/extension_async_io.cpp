// Extension: asynchronous frontier prefetch + chunk caching for the
// semi-external forward graph.
//
// The paper measures the I/O behaviour of its synchronous 4 KiB read(2)
// path (Figure 12: avgqu-sz 36-56; Figure 13: avgrq-sz ~10-11 sectors) and
// concludes that "we may exploit further I/O performance of the devices by
// aggregating small I/O operations such as libaio". This bench measures the
// two accelerators built on that observation, with the same iostat-style
// methodology as Figures 12/13:
//
//  - queue-depth sweep: aggregated batches posted to a background I/O
//    scheduler (libaio-style). Double-buffering overlaps edge processing
//    with device service; avgqu-sz shows the scheduler actually deepening
//    the device queue.
//  - chunk-cache sweep: a bounded DRAM cache of 4 KiB chunks. Kronecker
//    degree skew concentrates repeat reads on hub chunks, so even a cache
//    far smaller than the offloaded graph removes a large share of device
//    requests (reported as hit rate and requests per root).
#include <cstdio>

#include "bench_common.hpp"

using namespace sembfs;
using namespace sembfs::bench;

int main() {
  BenchConfig config = BenchConfig::resolve();
  // Queue behaviour is a concurrency phenomenon (the paper's machine runs
  // 48 threads); default oversubscribed like fig12 so the device queue and
  // the scheduler actually fill. SEMBFS_THREADS still overrides.
  config.env.threads = static_cast<int>(env_int("SEMBFS_THREADS", 48));
  print_header(config,
               "Extension — async I/O scheduler + chunk cache for the "
               "external forward graph",
               "the paper's Fig-13 conclusion (aggregate small I/O, keep "
               "the device queue full) plus hub-chunk caching; device "
               "requests drop, avgqu-sz is sustained by the scheduler");

  ThreadPool pool{static_cast<std::size_t>(config.env.threads)};
  const int roots = std::max(2, config.env.roots / 2);

  Graph500Instance instance =
      make_instance(config, Scenario::dram_pcie_flash(), pool);
  ExternalForwardGraph* external = instance.external_forward();
  if (external == nullptr) {
    std::printf("scenario has no external forward graph; nothing to do\n");
    return 0;
  }

  BfsConfig base;
  base.mode = BfsMode::TopDownOnly;  // maximize external-graph traffic
  base.aggregate_io = true;

  // --- Sweep 1: I/O scheduler queue depth (Figure 12 methodology) -------
  {
    AsciiTable table({"queue depth", "requests", "avgqu-sz", "avgrq-sz",
                      "await (ms)", "sched peak pending"});
    CsvWriter csv({"queue_depth", "requests", "avgqu_sz", "avgrq_sz",
                   "await_ms", "peak_pending"});
    for (const std::size_t depth : {std::size_t{0}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8},
                                    std::size_t{16}}) {
      external->disable_io_scheduler();  // each point starts clean
      BfsConfig bfs = base;
      bfs.io_queue_depth = depth;
      const BenchmarkRun run =
          run_graph500_bfs_phase(instance, bfs, roots, false, 0xbf5);
      const IoScheduler* scheduler = external->io_scheduler();
      const std::uint64_t peak =
          scheduler != nullptr ? scheduler->stats().peak_pending : 0;
      const std::string label = depth == 0 ? "sync" : std::to_string(depth);
      table.add_row({label, format_count(run.nvm_io.requests),
                     format_fixed(run.nvm_io.avg_queue_length, 2),
                     format_fixed(run.nvm_io.avg_request_sectors, 2),
                     format_fixed(run.nvm_io.await_ms, 3),
                     format_count(peak)});
      csv.add_row({label, std::to_string(run.nvm_io.requests),
                   format_fixed(run.nvm_io.avg_queue_length, 3),
                   format_fixed(run.nvm_io.avg_request_sectors, 2),
                   format_fixed(run.nvm_io.await_ms, 3),
                   std::to_string(peak)});
    }
    std::printf("\nqueue-depth sweep (aggregated batches, cache off):\n");
    table.print();
    std::printf("expected shape: the sync row lets every compute thread "
                "queue on the device at once (Fig 12's piled-up avgqu-sz); "
                "the scheduler rows bound device concurrency at the "
                "configured depth — avgqu-sz grows with depth while compute "
                "overlaps the in-flight reads — at essentially unchanged "
                "request counts.\n");
    maybe_write_csv(config, "extension_async_io_queue_depth", csv);
    external->disable_io_scheduler();
  }

  // --- Sweep 2: chunk-cache capacity ------------------------------------
  {
    AsciiTable table({"cache", "requests", "hit rate", "evictions",
                      "avgqu-sz"});
    CsvWriter csv({"cache_bytes", "requests", "hit_rate", "evictions",
                   "avgqu_sz"});
    const std::uint64_t baseline =
        run_graph500_bfs_phase(instance, base, roots, false, 0xbf5)
            .nvm_io.requests;
    table.add_row({"off", format_count(baseline), "-", "-", "-"});
    csv.add_row({"0", std::to_string(baseline), "0", "0", "0"});
    for (const std::size_t mib : {1, 4, 16, 64}) {
      external->disable_chunk_cache();  // cold start per point
      BfsConfig bfs = base;
      bfs.chunk_cache_bytes = mib << 20;
      const BenchmarkRun run =
          run_graph500_bfs_phase(instance, bfs, roots, false, 0xbf5);
      const ChunkCache* cache = external->chunk_cache();
      const ChunkCacheStats stats =
          cache != nullptr ? cache->stats() : ChunkCacheStats{};
      table.add_row({std::to_string(mib) + " MiB",
                     format_count(run.nvm_io.requests),
                     format_fixed(100.0 * stats.hit_rate(), 1) + " %",
                     format_count(stats.evictions),
                     format_fixed(run.nvm_io.avg_queue_length, 2)});
      csv.add_row({std::to_string(mib << 20),
                   std::to_string(run.nvm_io.requests),
                   format_fixed(stats.hit_rate(), 4),
                   std::to_string(stats.evictions),
                   format_fixed(run.nvm_io.avg_queue_length, 3)});
    }
    std::printf("\nchunk-cache sweep (aggregated batches, scheduler off; "
                "%d roots share one cache per point):\n", roots);
    table.print();
    std::printf("expected shape: requests fall and hit rate rises with "
                "capacity; Kronecker hubs make even 1 MiB worthwhile.\n");
    maybe_write_csv(config, "extension_async_io_cache", csv);
  }

  // --- Both accelerators together, with Step-4 validation ---------------
  {
    BfsConfig bfs = base;
    bfs.io_queue_depth = 8;
    bfs.chunk_cache_bytes = 16 << 20;
    const BenchmarkRun run =
        run_graph500_bfs_phase(instance, bfs, roots, true, 0xbf5);
    std::size_t valid = 0;
    for (const auto& r : run.runs) valid += r.validated ? 1 : 0;
    std::printf("\ncombined (depth 8 + 16 MiB cache): %zu/%zu roots "
                "validated, %llu device requests, avgqu-sz %.2f, cache hit "
                "rate %.1f %%\n",
                valid, run.runs.size(),
                static_cast<unsigned long long>(run.nvm_io.requests),
                run.nvm_io.avg_queue_length,
                100.0 * external->chunk_cache()->stats().hit_rate());
  }
  return 0;
}
