// Extension: overhead of the observability subsystem.
//
// The obs layer is designed so that a binary with the metrics registry
// compiled in but DISABLED pays only a relaxed atomic load + branch per
// instrumented site (acceptance target: <2% TEPS regression vs the same
// binary), and the ENABLED cost stays small enough to leave on during real
// experiments. This bench quantifies both:
//
//  - DRAM scenario (no simulated device sleeps to hide overhead — the
//    worst case for instrumentation): median TEPS with metrics disabled,
//    enabled, and enabled + per-level tracing.
//  - pcie_flash scenario: one instrumented external run showing the
//    metrics an experiment actually gets (device queue-wait/service
//    histograms, chunk-cache hit rate, per-level spans).
#include <cstdio>

#include "bench_common.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace sembfs;
using namespace sembfs::bench;

int main() {
  const BenchConfig config = BenchConfig::resolve();
  print_header(config,
               "Extension — observability overhead (metrics registry, "
               "trace spans)",
               "not a paper figure: validates that the instrumentation "
               "added for the Figure 10-13 analyses is cheap enough to "
               "keep compiled in (disabled-mode target: <2% TEPS)");

  ThreadPool pool{static_cast<std::size_t>(config.env.threads)};
  const int roots = config.env.roots;

  // --- DRAM overhead: disabled vs enabled vs enabled+trace --------------
  {
    Graph500Instance instance =
        make_instance(config, Scenario::dram_only(), pool);
    BfsConfig bfs;  // hybrid defaults

    obs::set_enabled(false);
    const double teps_off = median_teps(instance, bfs, roots);

    obs::metrics().reset();
    obs::set_enabled(true);
    const double teps_on = median_teps(instance, bfs, roots);

    obs::TraceLog trace;
    bfs.trace = &trace;
    const double teps_traced = median_teps(instance, bfs, roots);
    bfs.trace = nullptr;
    obs::set_enabled(false);

    const auto delta = [&](double teps) {
      return teps_off > 0.0 ? 100.0 * (teps_off - teps) / teps_off : 0.0;
    };
    AsciiTable table({"mode", "median TEPS", "delta vs off"});
    table.add_row({"metrics off", format_teps(teps_off), "-"});
    table.add_row({"metrics on", format_teps(teps_on),
                   format_fixed(delta(teps_on), 2) + " %"});
    table.add_row({"metrics on + trace", format_teps(teps_traced),
                   format_fixed(delta(teps_traced), 2) + " %"});
    std::printf("\nDRAM scenario overhead (%d roots per mode):\n", roots);
    table.print();
    std::printf("expected shape: the off row is the acceptance baseline; "
                "on/trace deltas should be low single-digit percent and "
                "noisy around zero at bench scale (%zu spans recorded).\n",
                trace.span_count());

    CsvWriter csv({"mode", "median_teps", "delta_pct"});
    csv.add_row({"off", format_fixed(teps_off, 0), "0"});
    csv.add_row({"on", format_fixed(teps_on, 0),
                 format_fixed(delta(teps_on), 3)});
    csv.add_row({"trace", format_fixed(teps_traced, 0),
                 format_fixed(delta(teps_traced), 3)});
    maybe_write_csv(config, "extension_observability_overhead", csv);
  }

  // --- What an instrumented external run records -------------------------
  {
    Graph500Instance instance =
        make_instance(config, Scenario::dram_pcie_flash(), pool);
    obs::metrics().reset();
    obs::set_enabled(true);
    obs::TraceLog trace;
    BfsConfig bfs;
    bfs.aggregate_io = true;
    bfs.io_queue_depth = 4;
    bfs.chunk_cache_bytes = 4 << 20;
    bfs.trace = &trace;
    run_graph500_bfs_phase(instance, bfs, std::max(2, roots / 2), false,
                           0xbf5);
    obs::set_enabled(false);

    const obs::MetricsSnapshot snap = obs::metrics().snapshot();
    AsciiTable table({"metric", "value"});
    for (const auto& [name, value] : snap.counters) {
      if (value != 0) table.add_row({name, format_count(value)});
    }
    std::printf("\npcie_flash instrumented run — non-zero counters:\n");
    table.print();

    AsciiTable hist_table({"histogram", "count", "p50 us", "p99 us"});
    for (const auto& [name, h] : snap.histograms) {
      if (h.count == 0) continue;
      hist_table.add_row({name, format_count(h.count),
                          format_fixed(h.quantile(0.5), 1),
                          format_fixed(h.quantile(0.99), 1)});
    }
    std::printf("\nlatency histograms:\n");
    hist_table.print();
    std::printf("\ntrace recorded %zu per-level spans across the runs.\n",
                trace.span_count());
  }
  return 0;
}
