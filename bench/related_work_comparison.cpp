// Related-work comparison (paper Section VII and the abstract's headline
// contrast): the paper's hybrid BFS with the forward graph offloaded
// achieves 4.22 GTEPS, versus 0.05 GTEPS reported by Pearce et al. for a
// fully semi-external traversal (1 TB DRAM + 12 TB NVM, SCALE 36) — an
// ~80x gap bought by keeping the bottom-up working set in DRAM.
//
// This bench runs, on the SAME simulated device and graph:
//   1. the paper's approach  — hybrid BFS, forward graph on NVM,
//   2. Pearce-style          — semi-external label-correcting BFS, whole
//                              CSR on NVM, only vertex state in DRAM,
//   3. GraphChi-style        — repeated streaming sweeps over the
//                              NVM-resident edge list until fixpoint.
// Expected shape: (1) >> (2) > or ~ (3), with (2) and (3) paying device
// I/O proportional to edges while (1) touches NVM only on a few top-down
// levels.
#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "bfs/baselines_external.hpp"
#include "graph/external_edge_list.hpp"

using namespace sembfs;
using namespace sembfs::bench;

int main() {
  const BenchConfig config = BenchConfig::resolve();
  print_header(config,
               "Related work — hybrid offload vs Pearce-style vs "
               "GraphChi-style on the same NVM",
               "paper vs Pearce et al.: 4.22 GTEPS vs 0.05 GTEPS (~80x) "
               "with a higher DRAM:NVM ratio");

  ThreadPool pool{static_cast<std::size_t>(config.env.threads)};
  const std::string dir = config.env.workdir + "/related";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // One graph, one device profile (PCIe flash).
  Graph500Instance instance =
      make_instance(config, Scenario::dram_pcie_flash(), pool);
  const auto roots = instance.select_roots(
      std::max(2, config.env.roots / 2), 0xbf5);

  AsciiTable table({"approach", "median TEPS", "NVM requests/BFS",
                    "scanned edges/BFS", "vs hybrid"});

  // 1. The paper's approach.
  double hybrid_teps = 0.0;
  {
    BfsConfig bfs;  // defaults: frontier-ratio a=1e4 b=1e5
    std::vector<double> teps;
    std::uint64_t requests = 0;
    std::int64_t scanned = 0;
    for (const Vertex root : roots) {
      const BfsResult r = instance.run_bfs(root, bfs);
      teps.push_back(r.teps);
      requests += r.nvm_requests;
      scanned += r.scanned_edges_total();
    }
    hybrid_teps = compute_stats(std::move(teps)).median;
    table.add_row({"hybrid + forward offload (paper)",
                   format_teps(hybrid_teps),
                   format_count(requests / roots.size()),
                   format_count(static_cast<std::uint64_t>(
                       scanned / static_cast<std::int64_t>(roots.size()))),
                   "1.0x"});
  }

  DeviceProfile profile = DeviceProfile::pcie_flash();
  profile.time_scale = config.time_scale;
  auto device = std::make_shared<NvmDevice>(profile);

  // 2. Pearce-style semi-external BFS: whole CSR on the device.
  {
    ThreadPool deep_pool{48};  // latency hiding via massive oversubscription
    ExternalCsrPartition whole{instance.full_csr(), device, dir, 0};
    std::vector<double> teps;
    std::uint64_t requests = 0;
    std::int64_t scanned = 0;
    for (const Vertex root : roots) {
      const ExternalBfsResult r = pearce_async_bfs(
          whole, instance.vertex_count(), root, deep_pool);
      teps.push_back(r.teps);
      requests += r.nvm_requests;
      scanned += r.scanned_edges;
    }
    const double median = compute_stats(std::move(teps)).median;
    table.add_row({"Pearce-style semi-external",
                   format_teps(median),
                   format_count(requests / roots.size()),
                   format_count(static_cast<std::uint64_t>(
                       scanned / static_cast<std::int64_t>(roots.size()))),
                   format_fixed(median / hybrid_teps, 3) + "x"});
  }

  // 3. GraphChi-style streaming sweeps over the edge list.
  {
    ExternalEdgeList ext{device, dir + "/edges.bin",
                         instance.vertex_count()};
    ext.append_all(instance.edge_list());
    std::vector<double> teps;
    std::uint64_t requests = 0;
    std::int64_t scanned = 0;
    for (const Vertex root : roots) {
      const ExternalBfsResult r = streaming_scan_bfs(ext, root);
      teps.push_back(r.teps);
      requests += r.nvm_requests;
      scanned += r.scanned_edges;
    }
    const double median = compute_stats(std::move(teps)).median;
    table.add_row({"GraphChi-style streaming scan",
                   format_teps(median),
                   format_count(requests / roots.size()),
                   format_count(static_cast<std::uint64_t>(
                       scanned / static_cast<std::int64_t>(roots.size()))),
                   format_fixed(median / hybrid_teps, 3) + "x"});
  }

  table.print();
  std::printf("\nexpected shape: the hybrid's NVM requests are orders of "
              "magnitude fewer, translating into a TEPS lead comparable to "
              "the paper's 4.22-vs-0.05 contrast.\n");
  std::filesystem::remove_all(dir);
  return 0;
}
