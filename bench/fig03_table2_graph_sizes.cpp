// Figure 3 + Table II: breakdown of NETAL data-structure sizes by SCALE.
//
// Paper values (SCALE 31, edge factor 16, 8 NUMA nodes): edge list 384 GB,
// forward graph 640 GB, backward graph 528 GB — total 1.5 TB. Table II
// (SCALE 27): forward 40.1 GB, backward 33.1 GB, status 15.1 GB, total
// 88.3 GB. The analytic model below matches the graph structures exactly
// (12 B/edge packed edge list; 8 B index entries, forward index duplicated
// per node); the status block is reported from THIS implementation's
// structures, with NETAL's own 15.1 GiB shown as the paper reference.
//
// The model is cross-checked against actually-constructed graphs at the
// (small) bench scale at the bottom.
#include <cstdio>

#include "bench_common.hpp"
#include "graph/backward_graph.hpp"
#include "graph/forward_graph.hpp"
#include "graph/graph_size.hpp"

using namespace sembfs;
using namespace sembfs::bench;

int main() {
  const BenchConfig config = BenchConfig::resolve();
  print_header(config, "Figure 3 + Table II — graph size breakdown by SCALE",
               "SCALE 31: EL 384 / FG 640 / BG 528 GiB; "
               "SCALE 27 (Table II): FG 40.1 / BG 33.1 / status 15.1 GiB");

  AsciiTable table({"SCALE", "edge list", "forward graph", "backward graph",
                    "status (ours)", "total (FG+BG+status)"});
  CsvWriter csv({"scale", "edge_list_gib", "forward_gib", "backward_gib",
                 "status_gib", "total_gib"});
  for (int scale = 20; scale <= 31; ++scale) {
    GraphSizeModel model;
    model.scale = scale;
    model.edge_factor = 16;
    model.numa_nodes = 8;  // paper machine: 4 Opteron packages x 2 dies
    table.add_row(
        {std::to_string(scale),
         format_fixed(bytes_to_gib(model.edge_list_bytes()), 1) + " GiB",
         format_fixed(bytes_to_gib(model.forward_graph_bytes()), 1) + " GiB",
         format_fixed(bytes_to_gib(model.backward_graph_bytes()), 1) + " GiB",
         format_fixed(bytes_to_gib(model.bfs_status_bytes()), 1) + " GiB",
         format_fixed(bytes_to_gib(model.total_bytes()), 1) + " GiB"});
    csv.add_row({std::to_string(scale),
                 format_fixed(bytes_to_gib(model.edge_list_bytes()), 3),
                 format_fixed(bytes_to_gib(model.forward_graph_bytes()), 3),
                 format_fixed(bytes_to_gib(model.backward_graph_bytes()), 3),
                 format_fixed(bytes_to_gib(model.bfs_status_bytes()), 3),
                 format_fixed(bytes_to_gib(model.total_bytes()), 3)});
  }
  table.print();

  std::printf(
      "\npaper checkpoints: SCALE 31 -> 384 / 640 / 528 GiB (model matches "
      "exactly);\nSCALE 27 -> FG 40.1 / BG 33.1 GiB (model: 40.0 / 33.0). "
      "NETAL's status block is 15.1 GiB (per-node queue duplication);\n"
      "this implementation's leaner status block is shown instead.\n");

  // Empirical cross-check at the bench scale.
  ThreadPool pool{static_cast<std::size_t>(config.env.threads)};
  KroneckerParams params;
  params.scale = config.env.scale;
  params.edge_factor = config.env.edge_factor;
  params.seed = config.env.seed;
  const EdgeList edges = generate_kronecker(params, pool);
  const VertexPartition partition{edges.vertex_count(),
                                  static_cast<std::size_t>(config.env.numa_nodes)};
  const ForwardGraph fg =
      ForwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const BackwardGraph bg =
      BackwardGraph::build(edges, partition, CsrBuildOptions{}, pool);

  GraphSizeModel model;
  model.scale = config.env.scale;
  model.edge_factor = config.env.edge_factor;
  model.numa_nodes = static_cast<std::size_t>(config.env.numa_nodes);

  AsciiTable check({"structure", "model", "constructed", "error"});
  const auto pct = [](std::uint64_t a, std::uint64_t b) {
    return format_fixed(
               100.0 * (static_cast<double>(a) - static_cast<double>(b)) /
                   static_cast<double>(b),
               2) +
           "%";
  };
  check.add_row({"forward graph", format_bytes(model.forward_graph_bytes()),
                 format_bytes(fg.byte_size()),
                 pct(fg.byte_size(), model.forward_graph_bytes())});
  check.add_row({"backward graph", format_bytes(model.backward_graph_bytes()),
                 format_bytes(bg.byte_size()),
                 pct(bg.byte_size(), model.backward_graph_bytes())});
  std::printf("\nempirical cross-check at SCALE %d, %d NUMA nodes "
              "(model assumes no self-loop removal):\n",
              config.env.scale, config.env.numa_nodes);
  check.print();

  maybe_write_csv(config, "fig03_table2_graph_sizes", csv);
  return 0;
}
