// Benchmark-step time breakdown across scenarios — the operational view
// behind the paper's Section V flow (Steps 1-4): where does the wall clock
// go when the edge list and forward graph live on NVM? Generation and
// construction are one-time costs the paper amortizes over 64 BFS runs;
// this table makes the amortization argument concrete.
#include <cstdio>

#include "bench_common.hpp"
#include "util/timer.hpp"

using namespace sembfs;
using namespace sembfs::bench;

int main() {
  const BenchConfig config = BenchConfig::resolve();
  print_header(config,
               "Step breakdown — Graph500 Steps 1-4 wall time per scenario",
               "construction is one-time; the paper amortizes it over 64 "
               "BFS iterations");

  ThreadPool pool{static_cast<std::size_t>(config.env.threads)};

  AsciiTable table({"scenario", "edge list on NVM", "Step1 gen (s)",
                    "Step2 build (s)", "Step3 BFS median (s)",
                    "Step4 validate (s)", "64-run total est. (s)"});

  struct Case {
    Scenario scenario;
    bool offload_edge_list;
  };
  const Case cases[] = {
      {Scenario::dram_only(), false},
      {Scenario::dram_pcie_flash(), false},
      {Scenario::dram_pcie_flash(), true},
      {Scenario::dram_ssd(), true},
  };

  for (const Case& c : cases) {
    InstanceConfig ic;
    ic.kronecker.scale = config.env.scale;
    ic.kronecker.edge_factor = config.env.edge_factor;
    ic.kronecker.seed = config.env.seed;
    ic.scenario = c.scenario;
    ic.scenario.time_scale = config.time_scale;
    ic.numa_nodes = static_cast<std::size_t>(config.env.numa_nodes);
    ic.workdir = config.env.workdir + "/steps";
    ic.offload_edge_list = c.offload_edge_list;
    Graph500Instance instance{ic, pool};

    BfsConfig bfs;
    bfs.policy.alpha = 1e4;
    bfs.policy.beta = 1e5;
    std::vector<double> bfs_seconds;
    double validate_seconds = 0.0;
    const auto roots =
        instance.select_roots(std::max(2, config.env.roots / 2), 0xbf5);
    for (const Vertex root : roots) {
      const BfsResult result = instance.run_bfs(root, bfs);
      bfs_seconds.push_back(result.seconds);
      Timer vt;
      const ValidationResult v = instance.validate(result);
      validate_seconds += vt.seconds();
      if (!v.ok) {
        std::fprintf(stderr, "validation failed: %s\n", v.error.c_str());
        return 1;
      }
    }
    const double bfs_median = compute_stats(bfs_seconds).median;
    const double validate_each =
        validate_seconds / static_cast<double>(roots.size());
    const double total64 = instance.generation_seconds() +
                           instance.construction_seconds() +
                           64.0 * (bfs_median + validate_each);
    table.add_row({c.scenario.name, c.offload_edge_list ? "yes" : "no",
                   format_fixed(instance.generation_seconds(), 3),
                   format_fixed(instance.construction_seconds(), 3),
                   format_fixed(bfs_median, 4),
                   format_fixed(validate_each, 4),
                   format_fixed(total64, 2)});
  }
  table.print();
  std::printf(
      "\nreading: offloading the edge list makes Step 2 slower (it streams "
      "from the device twice per graph) but leaves Step 3 untouched — the "
      "64-iteration total is dominated by BFS+validation either way.\n");

  // Frontier-representation comparison (docs/KERNELS.md): the same Step 3
  // under the three FrontierMode settings. Bitmap output skips the queue
  // round-trip on the wide bottom-up levels; Auto should track the winner.
  {
    InstanceConfig ic;
    ic.kronecker.scale = config.env.scale;
    ic.kronecker.edge_factor = config.env.edge_factor;
    ic.kronecker.seed = config.env.seed;
    ic.scenario = Scenario::dram_only();
    ic.scenario.time_scale = config.time_scale;
    ic.numa_nodes = static_cast<std::size_t>(config.env.numa_nodes);
    ic.workdir = config.env.workdir + "/steps";
    Graph500Instance instance{ic, pool};

    AsciiTable rep_table({"frontier rep", "BFS median (s)", "validated"});
    struct RepCase {
      const char* name;
      FrontierMode mode;
    };
    const RepCase rep_cases[] = {
        {"queue (forced)", FrontierMode::ForceQueue},
        {"bitmap (forced)", FrontierMode::ForceBitmap},
        {"auto", FrontierMode::Auto},
    };
    const auto roots =
        instance.select_roots(std::max(2, config.env.roots / 2), 0xbf5);
    for (const RepCase& rc : rep_cases) {
      BfsConfig bfs;
      bfs.policy.alpha = 1e4;
      bfs.policy.beta = 1e5;
      bfs.frontier_mode = rc.mode;
      std::vector<double> bfs_seconds;
      bool all_ok = true;
      for (const Vertex root : roots) {
        const BfsResult result = instance.run_bfs(root, bfs);
        bfs_seconds.push_back(result.seconds);
        const ValidationResult v = instance.validate(result);
        if (!v.ok) {
          std::fprintf(stderr, "validation failed (%s): %s\n", rc.name,
                       v.error.c_str());
          all_ok = false;
        }
      }
      if (!all_ok) return 1;
      rep_table.add_row({rc.name,
                         format_fixed(compute_stats(bfs_seconds).median, 4),
                         "yes"});
    }
    std::printf("\nbottom-up next-frontier representation (dram scenario):\n");
    rep_table.print();
  }
  return 0;
}
