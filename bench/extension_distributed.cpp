// Simulated multi-node hybrid BFS (paper future work: "applying our
// technique to multi-node environments"; design per the paper's reference
// [14], Beamer et al. MTAAP'13).
//
// The claim this bench demonstrates: in distributed BFS the bottom-up
// direction exists to cut COMMUNICATION — top-down sends one (child,
// parent) message per cut edge, bottom-up only allgathers the frontier.
// The hybrid switch therefore slashes remote bytes by orders of magnitude,
// which is the multi-node analogue of the paper's NVM-request reduction.
#include <cstdio>

#include "bench_common.hpp"
#include "dist/dist_bfs.hpp"

using namespace sembfs;
using namespace sembfs::bench;

int main() {
  const BenchConfig config = BenchConfig::resolve();
  print_header(config,
               "Extension — simulated multi-node hybrid BFS (1D partition)",
               "future work of Section VIII; expected: hybrid cuts remote "
               "communication by orders of magnitude vs top-down-only");

  const std::size_t ranks = 4;
  ThreadPool pool{std::max<std::size_t>(
      ranks, static_cast<std::size_t>(config.env.threads))};

  KroneckerParams params;
  params.scale = config.env.scale;
  params.edge_factor = config.env.edge_factor;
  params.seed = config.env.seed;
  const EdgeList edges = generate_kronecker(params, pool);
  DistributedBfs dist{edges, ranks, pool};

  // Pick a root with edges from rank 0's owned range.
  const Csr& g0 = dist.local_graph(0);
  Vertex root = g0.source_range().begin;
  while (root < g0.source_range().end && g0.degree(root) == 0) ++root;

  struct Mode {
    const char* name;
    DistBfsConfig config;
  };
  DistBfsConfig hybrid;
  hybrid.policy.alpha = 1e4;
  hybrid.policy.beta = 1e5;
  DistBfsConfig top_down;
  top_down.mode = DistBfsConfig::Mode::TopDownOnly;
  DistBfsConfig bottom_up;
  bottom_up.mode = DistBfsConfig::Mode::BottomUpOnly;
  const Mode modes[] = {{"hybrid (paper rule)", hybrid},
                        {"top-down only", top_down},
                        {"bottom-up only", bottom_up}};

  AsciiTable table({"mode", "median TEPS", "remote bytes/BFS", "depth"});
  for (const Mode& mode : modes) {
    std::vector<double> teps;
    std::uint64_t bytes = 0;
    std::int32_t depth = 0;
    const int roots = std::max(2, config.env.roots / 2);
    for (int i = 0; i < roots; ++i) {
      const DistBfsResult r = dist.run(root, mode.config);
      teps.push_back(r.teps);
      bytes += r.total_remote_bytes;
      depth = r.depth;
    }
    table.add_row({mode.name,
                   format_teps(compute_stats(std::move(teps)).median),
                   format_bytes(bytes / static_cast<std::uint64_t>(roots)),
                   std::to_string(depth)});
  }
  table.print();

  // Per-level communication profile of one hybrid run.
  std::printf("\nper-level communication (hybrid):\n");
  const DistBfsResult run = dist.run(root, hybrid);
  AsciiTable levels({"level", "direction", "frontier", "claimed",
                     "remote bytes"});
  for (const DistLevelStats& ls : run.levels)
    levels.add_row({std::to_string(ls.level), direction_name(ls.direction),
                    format_count(static_cast<std::uint64_t>(
                        ls.frontier_vertices)),
                    format_count(static_cast<std::uint64_t>(
                        ls.claimed_vertices)),
                    format_bytes(ls.remote_bytes)});
  levels.print();
  std::printf("\nexpected shape: the bottom-up levels' remote bytes track "
              "the (small) frontier, not the (huge) edge cut.\n");
  return 0;
}
