// Figure 10: average traversed (scanned) edges per BFS, split by direction,
// across the alpha/beta grid.
//
// Paper finding: with the offload-friendly settings (large alpha), almost
// all edge work happens bottom-up; the top-down share — the only part that
// touches the NVM-resident forward graph — is a sliver of the total. That
// is *why* the offload is cheap. Expected shape: top-down scanned edges
// drop by orders of magnitude as alpha grows, while the total stays within
// a small factor.
#include <cstdio>

#include "bench_common.hpp"

using namespace sembfs;
using namespace sembfs::bench;

int main() {
  const BenchConfig config = BenchConfig::resolve();
  print_header(config,
               "Figure 10 — avg traversed edges by direction vs (alpha,beta)",
               "offload-friendly settings push nearly all edge work into "
               "the bottom-up direction");

  ThreadPool pool{static_cast<std::size_t>(config.env.threads)};
  Graph500Instance instance =
      make_instance(config, Scenario::dram_only(), pool);
  const auto roots = instance.select_roots(config.env.roots, 0xbf5);

  AsciiTable table({"setting", "top-down edges", "bottom-up edges", "total",
                    "top-down share"});
  CsvWriter csv({"alpha", "beta", "avg_top_down_edges",
                 "avg_bottom_up_edges", "avg_total_edges"});

  for (const AlphaBeta& ab : paper_alpha_beta_grid()) {
    BfsConfig bfs;
    bfs.policy.alpha = ab.alpha;
    bfs.policy.beta = ab.beta;
    double td = 0.0;
    double bu = 0.0;
    for (const Vertex root : roots) {
      const BfsResult result = instance.run_bfs(root, bfs);
      td += static_cast<double>(result.scanned_edges_top_down);
      bu += static_cast<double>(result.scanned_edges_bottom_up);
    }
    td /= static_cast<double>(roots.size());
    bu /= static_cast<double>(roots.size());
    const double total = td + bu;
    table.add_row({ab.label,
                   format_count(static_cast<std::uint64_t>(td)),
                   format_count(static_cast<std::uint64_t>(bu)),
                   format_count(static_cast<std::uint64_t>(total)),
                   format_fixed(100.0 * td / total, 2) + "%"});
    csv.add_row({format_scientific(ab.alpha), format_scientific(ab.beta),
                 format_fixed(td, 0), format_fixed(bu, 0),
                 format_fixed(total, 0)});
  }
  table.print();
  std::printf("\nexpected shape: the top-down share column collapses toward "
              "~0%% as alpha grows (paper's offload regime).\n");

  maybe_write_csv(config, "fig10_traversed_edges", csv);
  return 0;
}
