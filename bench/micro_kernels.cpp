// google-benchmark microbenchmarks for the kernels underneath the figures:
// bitmap operations, Kronecker generation, CSR construction, the two BFS
// step directions, and the simulated-NVM read path.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "bench_common.hpp"
#include "bfs/bottom_up.hpp"
#include "bfs/top_down.hpp"
#include "graph/external_csr.hpp"
#include "graph/kronecker.hpp"
#include "util/bitmap.hpp"
#include "util/prng.hpp"

namespace {

using namespace sembfs;

void BM_BitmapSet(benchmark::State& state) {
  Bitmap bitmap{1 << 20};
  std::size_t i = 0;
  for (auto _ : state) {
    bitmap.set(i & ((1 << 20) - 1));
    i += 7919;
  }
}
BENCHMARK(BM_BitmapSet);

void BM_AtomicBitmapTrySet(benchmark::State& state) {
  AtomicBitmap bitmap{1 << 20};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bitmap.try_set(i & ((1 << 20) - 1)));
    i += 7919;
  }
}
BENCHMARK(BM_AtomicBitmapTrySet);

void BM_BitmapCount(benchmark::State& state) {
  Bitmap bitmap{1 << 20};
  for (std::size_t i = 0; i < (1 << 20); i += 3) bitmap.set(i);
  for (auto _ : state) benchmark::DoNotOptimize(bitmap.count());
}
BENCHMARK(BM_BitmapCount);

void BM_BitmapOrMerge(benchmark::State& state) {
  // The word-wise merge underneath BfsStatus::advance() in bitmap mode:
  // one destination word per 64 vertices, OR-accumulated from a source.
  constexpr std::size_t kBits = 1 << 24;
  Bitmap dst{kBits};
  Bitmap src{kBits};
  for (std::size_t i = 0; i < kBits; i += 5) src.set(i);
  for (auto _ : state) {
    dst.or_with(src);
    benchmark::DoNotOptimize(dst.words().data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBits / 8));
}
BENCHMARK(BM_BitmapOrMerge);

void BM_Xoroshiro(benchmark::State& state) {
  Xoroshiro128 rng{42};
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_Xoroshiro);

void BM_KroneckerEdge(benchmark::State& state) {
  KroneckerParams params;
  params.scale = static_cast<int>(state.range(0));
  params.edge_factor = 16;
  std::vector<Edge> out(1024);
  std::uint64_t offset = 0;
  for (auto _ : state) {
    generate_kronecker_range(params, offset, offset + 1024, out);
    offset += 1024;
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_KroneckerEdge)->Arg(16)->Arg(24)->Arg(32);

void BM_CsrBuild(benchmark::State& state) {
  ThreadPool pool{static_cast<std::size_t>(BenchEnv::resolve().threads)};
  KroneckerParams params;
  params.scale = static_cast<int>(state.range(0));
  params.edge_factor = 16;
  const EdgeList edges = generate_kronecker(params, pool);
  for (auto _ : state) {
    const Csr csr = build_csr(edges, CsrBuildOptions{}, pool);
    benchmark::DoNotOptimize(csr.entry_count());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(edges.edge_count()));
}
BENCHMARK(BM_CsrBuild)->Arg(12)->Arg(14)->Unit(benchmark::kMillisecond);

struct StepFixtureState {
  ThreadPool pool{static_cast<std::size_t>(BenchEnv::resolve().threads)};
  NumaTopology topology{4, 1};
  EdgeList edges;
  ForwardGraph forward;
  BackwardGraph backward;
  BfsStatus status{1};
  Vertex root = 0;

  explicit StepFixtureState(int scale) {
    KroneckerParams params;
    params.scale = scale;
    params.edge_factor = 16;
    edges = generate_kronecker(params, pool);
    const VertexPartition partition{edges.vertex_count(), 4};
    forward = ForwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
    backward = BackwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
    status = BfsStatus{edges.vertex_count()};
    while (backward.neighbors(root).empty()) ++root;
  }
};

void BM_TopDownFirstLevels(benchmark::State& state) {
  StepFixtureState fx{static_cast<int>(state.range(0))};
  for (auto _ : state) {
    fx.status.reset(fx.root);
    std::int64_t scanned = 0;
    for (int level = 1; level <= 3 && fx.status.frontier_size() > 0;
         ++level) {
      scanned += top_down_step(fx.forward, fx.status, level, fx.topology,
                               fx.pool, 64)
                     .scanned_edges;
      fx.status.advance();
    }
    benchmark::DoNotOptimize(scanned);
  }
}
BENCHMARK(BM_TopDownFirstLevels)->Arg(14)->Unit(benchmark::kMillisecond);

void BM_BottomUpSweep(benchmark::State& state) {
  StepFixtureState fx{static_cast<int>(state.range(0))};
  for (auto _ : state) {
    fx.status.reset(fx.root);
    // One top-down level to seed a frontier, then one bottom-up sweep.
    top_down_step(fx.forward, fx.status, 1, fx.topology, fx.pool, 64);
    fx.status.advance();
    benchmark::DoNotOptimize(
        bottom_up_step(fx.backward, fx.status, 2, fx.topology, fx.pool,
                       1024)
            .scanned_edges);
  }
}
BENCHMARK(BM_BottomUpSweep)->Arg(14)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_BottomUpSweepBitmap(benchmark::State& state) {
  // Same sweep with bitmap frontier output. The Queue variant pays its
  // per-worker queue merge inside the step; the bitmap variant defers the
  // word-wise OR-merge to advance(), so it is timed here too.
  StepFixtureState fx{static_cast<int>(state.range(0))};
  for (auto _ : state) {
    fx.status.reset(fx.root);
    top_down_step(fx.forward, fx.status, 1, fx.topology, fx.pool, 64);
    fx.status.advance();
    benchmark::DoNotOptimize(
        bottom_up_step(fx.backward, fx.status, 2, fx.topology, fx.pool,
                       1024, BottomUpOutput::Bitmap)
            .scanned_edges);
    fx.status.advance(fx.pool);
  }
}
BENCHMARK(BM_BottomUpSweepBitmap)
    ->Arg(14)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_BottomUpLateLevel(benchmark::State& state) {
  // Late-level sweep: after three top-down levels nearly every vertex is
  // visited, so the word-skip path (one load + compare per 64 vertices)
  // carries almost the whole range.
  StepFixtureState fx{static_cast<int>(state.range(0))};
  for (auto _ : state) {
    state.PauseTiming();
    fx.status.reset(fx.root);
    for (int level = 1; level <= 3 && fx.status.frontier_size() > 0;
         ++level) {
      top_down_step(fx.forward, fx.status, level, fx.topology, fx.pool, 64);
      fx.status.advance();
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        bottom_up_step(fx.backward, fx.status, 4, fx.topology, fx.pool,
                       1024)
            .scanned_edges);
  }
}
BENCHMARK(BM_BottomUpLateLevel)
    ->Arg(14)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_NvmChunkedRead(benchmark::State& state) {
  const std::string dir = "/tmp/sembfs_micro";
  std::filesystem::create_directories(dir);
  DeviceProfile profile = DeviceProfile::pcie_flash();
  profile.time_scale = 0.0;  // measure the software path, not the sleep
  auto device = std::make_shared<NvmDevice>(profile);
  NvmFile file{device, dir + "/chunked.bin"};
  std::vector<std::byte> payload(1 << 22);
  file.write(0, payload);
  ChunkReader reader{file, static_cast<std::uint32_t>(state.range(0))};
  std::vector<std::byte> out(1 << 16);
  std::uint64_t offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reader.read_range(offset, out));
    offset = (offset + out.size()) % ((1 << 22) - out.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(out.size()));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_NvmChunkedRead)->Arg(4096)->Arg(65536);

}  // namespace
