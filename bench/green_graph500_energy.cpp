// Green Graph500 energy analysis (paper abstract / Section VIII: 4.35
// MTEPS/W, 4th on the Nov 2013 Big Data list, on a 4-way server with
// 500 GB DRAM + 4 TB NVM).
//
// No power meter exists here, so this bench combines measured TEPS with a
// component power model (see src/graph500/energy.hpp) to evaluate the
// paper's energy argument: offloading the forward graph lets a node drop
// half its DRAM — and DRAM watts dominate NVM watts — so MTEPS/W can
// *improve* even while raw TEPS degrades. Two views are printed:
//   (a) measured TEPS on this box with modeled power for each scenario;
//   (b) the paper's DRAM budgets (128 GB vs 64 GB + device) with the
//       paper's TEPS, reproducing the published trade-off at scale.
#include <cstdio>

#include "bench_common.hpp"
#include "graph500/energy.hpp"

using namespace sembfs;
using namespace sembfs::bench;

int main() {
  const BenchConfig config = BenchConfig::resolve();
  print_header(config,
               "Green Graph500 — MTEPS/W under the component power model",
               "paper: 4.35 MTEPS/W (Nov 2013 Big Data list, rank 4)");

  ThreadPool pool{static_cast<std::size_t>(config.env.threads)};
  const PowerModel model;

  // (a) measured TEPS + modeled power, per scenario, best-of-grid.
  AsciiTable measured({"scenario", "median TEPS", "graph DRAM", "watts",
                       "MTEPS/W"});
  for (const Scenario& scenario :
       {Scenario::dram_only(), Scenario::dram_pcie_flash(),
        Scenario::dram_ssd()}) {
    Graph500Instance instance = make_instance(config, scenario, pool);
    BfsConfig bfs;
    bfs.policy.alpha = 1e4;
    bfs.policy.beta = 1e5;
    const double teps = median_teps(instance, bfs, config.env.roots);
    const EnergyEstimate e = estimate_energy(
        model, teps, instance.graph_dram_bytes(),
        scenario.offload_forward ? scenario.nvm_profile.name : "dram");
    measured.add_row({scenario.name, format_teps(teps),
                      format_bytes(instance.graph_dram_bytes()),
                      format_fixed(e.watts, 1),
                      format_fixed(e.mteps_per_watt, 4)});
  }
  std::printf("\n(a) measured on this machine (power modeled):\n");
  measured.print();

  // (b) the paper's configurations and reported TEPS through the same
  // model: 128 GiB DRAM-only at 5.12 GTEPS vs 64 GiB + ioDrive2 at 4.22
  // GTEPS vs 64 GiB + SSD at 2.76 GTEPS.
  AsciiTable paper({"configuration (paper)", "TEPS (paper)", "watts (model)",
                    "MTEPS/W (model)"});
  struct Row {
    const char* name;
    double teps;
    std::uint64_t dram;
    const char* device;
  };
  const std::uint64_t gib = 1ull << 30;
  const Row rows[] = {
      {"128 GiB DRAM-only, 5.12 GTEPS", 5.12e9, 128 * gib, "dram"},
      {"64 GiB + PCIe flash, 4.22 GTEPS", 4.22e9, 64 * gib, "pcie_flash"},
      {"64 GiB + SATA SSD, 2.76 GTEPS", 2.76e9, 64 * gib, "sata_ssd"},
  };
  for (const Row& row : rows) {
    const EnergyEstimate e =
        estimate_energy(model, row.teps, row.dram, row.device);
    paper.add_row({row.name, format_teps(row.teps),
                   format_fixed(e.watts, 1),
                   format_fixed(e.mteps_per_watt, 2)});
  }
  std::printf("\n(b) the paper's published numbers through the same power "
              "model:\n");
  paper.print();
  std::printf(
      "\nreading: at the paper's DRAM scale the offload costs ~18%% TEPS "
      "but only ~5%% power headroom is regained (DRAM is cheap at 64 GiB); "
      "the offload's energy case is *capacity* — the same node can process "
      "a graph its DRAM alone never could, instead of adding sockets. The "
      "published 4.35 MTEPS/W lands between this model's DRAM-only and "
      "PCIe-flash estimates, validating the envelope.\n");
  return 0;
}
