// Ablation: degree-ordered vertex relabeling (Yasui et al., the paper's
// reference [10] — part of the NETAL lineage this work builds on).
//
// Renumbering vertices in decreasing-degree order packs hubs into a dense
// ID prefix: early bottom-up levels then probe a cache-resident corner of
// the frontier bitmap, and hub adjacency becomes more sequential. Expect a
// modest TEPS gain on the skewed Kronecker graph and ~none on the uniform
// graph (no hubs to pack). Note the Graph500 generator deliberately
// *scrambles* vertex IDs — this ablation shows what NETAL wins back.
#include <cstdio>

#include "bench_common.hpp"
#include "graph/relabel.hpp"
#include "graph/uniform.hpp"

using namespace sembfs;
using namespace sembfs::bench;

namespace {

double hybrid_median_teps(const EdgeList& edges, ThreadPool& pool,
                          int roots, std::size_t numa_nodes) {
  const VertexPartition partition{edges.vertex_count(), numa_nodes};
  const ForwardGraph forward =
      ForwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  const BackwardGraph backward =
      BackwardGraph::build(edges, partition, CsrBuildOptions{}, pool);
  GraphStorage storage;
  storage.forward_dram = &forward;
  storage.backward_dram = &backward;
  HybridBfsRunner runner{
      storage, NumaTopology::with_total_threads(numa_nodes, pool.size()),
      pool};

  Vertex root = 0;
  while (backward.neighbors(root).empty()) ++root;
  BfsConfig config;
  config.policy.alpha = 1e3;
  config.policy.beta = 1e4;
  std::vector<double> teps;
  for (int i = 0; i < roots; ++i)
    teps.push_back(runner.run(root, config).teps);
  return compute_stats(std::move(teps)).median;
}

}  // namespace

int main() {
  const BenchConfig config = BenchConfig::resolve();
  print_header(config,
               "Ablation — degree-ordered vertex relabeling (NETAL, ref "
               "[10])",
               "hub-packing recovers locality the Graph500 ID scramble "
               "destroys; uniform graphs gain ~nothing");

  ThreadPool pool{static_cast<std::size_t>(config.env.threads)};
  const auto nodes = static_cast<std::size_t>(config.env.numa_nodes);

  AsciiTable table({"workload", "scrambled IDs", "degree-ordered IDs",
                    "gain"});
  const auto run_pair = [&](const char* name, const EdgeList& edges) {
    const double plain =
        hybrid_median_teps(edges, pool, config.env.roots, nodes);
    const Relabeling map = degree_order_relabeling(edges, pool);
    const EdgeList renamed = apply_relabeling(edges, map);
    const double ordered =
        hybrid_median_teps(renamed, pool, config.env.roots, nodes);
    table.add_row({name, format_teps(plain), format_teps(ordered),
                   format_fixed((ordered / plain - 1.0) * 100.0, 1) + "%"});
  };

  KroneckerParams kron;
  kron.scale = config.env.scale;
  kron.edge_factor = config.env.edge_factor;
  kron.seed = config.env.seed;
  run_pair("Kronecker (Graph500)", generate_kronecker(kron, pool));

  UniformParams uniform;
  uniform.scale = config.env.scale;
  uniform.edge_factor = config.env.edge_factor;
  uniform.seed = config.env.seed;
  run_pair("uniform (Erdos-Renyi)", generate_uniform(uniform, pool));

  table.print();
  std::printf("\nexpected shape: the Kronecker row gains more than the "
              "uniform row (hub packing only helps when hubs exist).\n");
  return 0;
}
