// Shared scaffolding for the figure/table reproduction benches.
//
// Every bench binary:
//  - runs with NO arguments (the harness loops over build/bench/*),
//  - takes its size knobs from SEMBFS_* environment variables with small,
//    laptop-fast defaults,
//  - prints a header describing the configuration and the paper result it
//    reproduces, an AsciiTable of the measured series, and (optionally)
//    writes a CSV next to the working directory.
#pragma once

#include <string>

#include "bfs/hybrid_bfs.hpp"
#include "graph500/benchmark.hpp"
#include "graph500/instance.hpp"
#include "graph500/scenario.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace sembfs::bench {

/// Resolved environment for a bench run.
struct BenchConfig {
  BenchEnv env;
  double time_scale;   ///< SEMBFS_TIME_SCALE (default 0.1)
  std::string csv_dir; ///< SEMBFS_CSV_DIR ("" = no CSV output)

  static BenchConfig resolve();
};

/// Prints the standard bench header: what paper artifact this reproduces,
/// machine emulation parameters, and any caveats.
void print_header(const BenchConfig& config, const std::string& figure,
                  const std::string& paper_summary);

/// The alpha/beta grid the paper sweeps in Figures 8-10: alpha in
/// {1e4, 1e5, 1e6} and beta in {10a, 1a, 0.1a}.
struct AlphaBeta {
  double alpha;
  double beta;
  std::string label;  ///< e.g. "a=1.E+04 b=10a"
};
std::vector<AlphaBeta> paper_alpha_beta_grid();

/// Builds an instance for `scenario` with the bench env's knobs.
Graph500Instance make_instance(const BenchConfig& config,
                               const Scenario& scenario, ThreadPool& pool,
                               int scale_override = 0);

/// Median-TEPS of Steps 3-4 with the given BFS parameters.
double median_teps(Graph500Instance& instance, const BfsConfig& bfs,
                   int roots, std::uint64_t root_seed = 0xbf5);

/// Writes the CSV when SEMBFS_CSV_DIR is set; no-op otherwise.
void maybe_write_csv(const BenchConfig& config, const std::string& name,
                     const CsvWriter& csv);

}  // namespace sembfs::bench
