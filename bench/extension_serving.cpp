// Extension: concurrent BFS serving over one shared semi-external graph.
//
// The paper benchmarks one traversal at a time; a deployed graph service
// answers many reachability/distance queries concurrently against the SAME
// resident graph. This bench drives the serving engine (src/serve) with a
// seeded closed-loop load generator and sweeps the MS-BFS batch width:
//
//  - batch 1: every query runs as its own slot-pooled BfsSession, levels
//    interleaved one per dispatcher tick (fairness baseline),
//  - batch 8 / 64: batchable queries share one multi-source traversal —
//    per-vertex uint64 lane words on the word-parallel bottom-up kernel,
//    so up to 64 queries pay roughly one sweep's memory traffic.
//
// Expected shape: QPS grows with batch width once concurrency exceeds the
// width, because the shared sweep amortizes the per-level vertex scan that
// dominates single-query bottom-up time. The acceptance bar for the
// serving subsystem is >= 2x QPS at batch 64 vs batch 1 under a 64-client
// closed loop.
// A second sweep compares batch planners under traffic shaping: a
// Zipf-skewed bursty mix with a high-priority lane and deadlines, FIFO
// planner vs the cost-aware planner plus hot-root result cache. The
// shaped acceptance bar is >= 1.3x goodput with no p99 regression and
// zero high-priority deadline misses.
#include <cstdio>
#include <deque>

#include "bench_common.hpp"
#include "serve/batch_planner.hpp"
#include "serve/engine.hpp"
#include "serve/load_gen.hpp"
#include "util/timer.hpp"

using namespace sembfs;
using namespace sembfs::bench;

int main() {
  BenchConfig config = BenchConfig::resolve();
  print_header(config,
               "Extension — concurrent BFS query serving (MS-BFS batching)",
               "closed-loop clients over one shared graph; batched "
               "multi-source traversals amortize the per-level sweep, so "
               "QPS scales with batch width at equal correctness");

  ThreadPool pool{static_cast<std::size_t>(config.env.threads)};
  Graph500Instance instance =
      make_instance(config, Scenario::dram_pcie_flash(), pool);

  const auto clients =
      static_cast<std::size_t>(env_int("SEMBFS_SERVE_CLIENTS", 16));
  const auto per_client =
      static_cast<std::size_t>(env_int("SEMBFS_SERVE_QUERIES", 4));

  AsciiTable table({"batch", "qps", "mean ms", "p50 ms", "p95 ms", "p99 ms",
                    "batches", "batched", "sessions"});
  CsvWriter csv({"batch", "qps", "mean_ms", "p50_ms", "p95_ms", "p99_ms",
                 "batches", "batched_queries", "session_queries"});
  double qps_batch1 = 0.0;
  double qps_best = 0.0;
  for (const std::size_t width : {std::size_t{1}, std::size_t{8},
                                  std::size_t{64}}) {
    serve::EngineConfig engine_config;
    engine_config.max_batch = width;
    engine_config.queue_capacity = clients * per_client + 1;
    serve::QueryEngine engine{instance.storage(), instance.topology(), pool,
                              engine_config};

    serve::LoadGenConfig load;
    load.clients = clients;
    load.queries_per_client = per_client;
    load.seed = config.env.seed;
    // batch 1 measures the pure session path; wider rows the MS-BFS path.
    load.options.batchable = width > 1;
    const serve::LoadGenReport report =
        serve::run_load(engine, instance.vertex_count(), load);
    engine.shutdown();
    const serve::EngineStats stats = engine.stats();

    table.add_row({std::to_string(width), format_fixed(report.qps, 1),
                   format_fixed(report.mean_ms, 2),
                   format_fixed(report.p50_ms, 2),
                   format_fixed(report.p95_ms, 2),
                   format_fixed(report.p99_ms, 2),
                   format_count(stats.batches),
                   format_count(stats.batched_queries),
                   format_count(stats.session_queries)});
    csv.add_row({std::to_string(width), format_fixed(report.qps, 2),
                 format_fixed(report.mean_ms, 3),
                 format_fixed(report.p50_ms, 3),
                 format_fixed(report.p95_ms, 3),
                 format_fixed(report.p99_ms, 3),
                 std::to_string(stats.batches),
                 std::to_string(stats.batched_queries),
                 std::to_string(stats.session_queries)});
    if (width == 1) qps_batch1 = report.qps;
    if (report.qps > qps_best) qps_best = report.qps;
  }

  std::printf("\nbatch-width sweep (%zu closed-loop clients x %zu queries "
              "each):\n", clients, per_client);
  table.print();
  std::printf("expected shape: wider batches raise QPS and cut tail "
              "latency once clients > width; batch 1 is the fairness "
              "baseline every query could fall back to.\n");
  if (qps_batch1 > 0.0)
    std::printf("best/batch-1 speedup: %.2fx\n", qps_best / qps_batch1);
  maybe_write_csv(config, "extension_serving", csv);

  // --- Traffic-shaped sweep: FIFO baseline vs cost-aware + cache -------
  // Zipf(1.0) roots, bursty arrivals, a high-priority client minority
  // with deadlines, per-tenant quotas. Same trace seed for both rows, so
  // the delta is the planner + cache, not the load.
  AsciiTable shaped({"planner", "qps", "p99 ms", "cache hits", "high miss",
                     "retries", "rejected"});
  CsvWriter shaped_csv({"planner", "qps", "p99_ms", "cache_hits",
                        "high_deadline_expired", "retries", "rejected"});
  double qps_fifo = 0.0;
  double qps_shaped = 0.0;
  for (const bool shaped_row : {false, true}) {
    serve::EngineConfig engine_config;
    engine_config.planner = shaped_row ? serve::PlannerMode::CostAware
                                       : serve::PlannerMode::Fifo;
    engine_config.cache_bytes = shaped_row ? (64u << 20) : 0;
    engine_config.queue_capacity = 256;
    engine_config.high_reserve = shaped_row ? 32 : 0;
    engine_config.tenant_quota = 64;

    serve::QueryEngine engine{instance.storage(), instance.topology(), pool,
                              engine_config};
    serve::LoadGenConfig load;
    load.clients = clients;
    load.queries_per_client = per_client;
    load.seed = config.env.seed;
    load.zipf_theta = 1.0;
    load.arrival = serve::ArrivalPattern::Burst;
    load.burst_duty = 0.25;
    load.period_ms = 100.0;
    load.tenants = 4;
    load.high_priority_clients = clients / 8;
    load.max_retries = 8;
    load.options.deadline_ms = 2000.0;
    const serve::LoadGenReport report =
        serve::run_load(engine, instance.vertex_count(), load);
    engine.shutdown();
    const serve::EngineStats stats = engine.stats();

    const char* name = serve::to_string(engine_config.planner);
    shaped.add_row({name, format_fixed(report.qps, 1),
                    format_fixed(report.p99_ms, 2),
                    format_count(stats.cache_hits),
                    format_count(report.high_deadline_expired),
                    format_count(report.retries),
                    format_count(report.rejected)});
    shaped_csv.add_row({name, format_fixed(report.qps, 2),
                        format_fixed(report.p99_ms, 3),
                        std::to_string(stats.cache_hits),
                        std::to_string(report.high_deadline_expired),
                        std::to_string(report.retries),
                        std::to_string(report.rejected)});
    (shaped_row ? qps_shaped : qps_fifo) = report.qps;
  }
  std::printf("\ntraffic-shaped sweep (Zipf 1.0 roots, 25%% burst duty, "
              "%zu high-priority clients, 2 s deadlines):\n", clients / 8);
  shaped.print();
  if (qps_fifo > 0.0)
    std::printf("shaped/fifo goodput ratio: %.2fx (bar: >= 1.3x with zero "
                "high-priority misses)\n", qps_shaped / qps_fifo);
  maybe_write_csv(config, "extension_serving_shaped", shaped_csv);

  // --- Planner drain microbench (queue depth 10k) ----------------------
  // Regression guard for the O(n^2) front-erase the admission queues used
  // to do: draining a 10k-deep deque through plan_batch must be linear —
  // milliseconds, not seconds.
  {
    constexpr std::size_t kDepth = 10'000;
    std::deque<serve::QueryRef> queued;
    for (std::size_t i = 0; i < kDepth; ++i)
      queued.push_back(std::make_shared<serve::Query>(
          static_cast<serve::QueryId>(i + 1),
          static_cast<Vertex>(i % 97), serve::QueryOptions{}));
    Timer drain;
    std::size_t batches = 0;
    std::size_t planned = 0;
    while (!queued.empty()) {
      const serve::BatchPlan plan = serve::plan_batch(queued, 64, 128);
      planned += plan.queries.size();
      ++batches;
    }
    const double ms = drain.milliseconds();
    std::printf("\nplanner drain microbench: %zu queries -> %zu batches in "
                "%.2f ms (%.0f queries/ms)\n", planned, batches, ms,
                ms > 0.0 ? static_cast<double>(planned) / ms : 0.0);
  }
  return 0;
}
