// Extension: concurrent BFS serving over one shared semi-external graph.
//
// The paper benchmarks one traversal at a time; a deployed graph service
// answers many reachability/distance queries concurrently against the SAME
// resident graph. This bench drives the serving engine (src/serve) with a
// seeded closed-loop load generator and sweeps the MS-BFS batch width:
//
//  - batch 1: every query runs as its own slot-pooled BfsSession, levels
//    interleaved one per dispatcher tick (fairness baseline),
//  - batch 8 / 64: batchable queries share one multi-source traversal —
//    per-vertex uint64 lane words on the word-parallel bottom-up kernel,
//    so up to 64 queries pay roughly one sweep's memory traffic.
//
// Expected shape: QPS grows with batch width once concurrency exceeds the
// width, because the shared sweep amortizes the per-level vertex scan that
// dominates single-query bottom-up time. The acceptance bar for the
// serving subsystem is >= 2x QPS at batch 64 vs batch 1 under a 64-client
// closed loop.
#include <cstdio>

#include "bench_common.hpp"
#include "serve/engine.hpp"
#include "serve/load_gen.hpp"

using namespace sembfs;
using namespace sembfs::bench;

int main() {
  BenchConfig config = BenchConfig::resolve();
  print_header(config,
               "Extension — concurrent BFS query serving (MS-BFS batching)",
               "closed-loop clients over one shared graph; batched "
               "multi-source traversals amortize the per-level sweep, so "
               "QPS scales with batch width at equal correctness");

  ThreadPool pool{static_cast<std::size_t>(config.env.threads)};
  Graph500Instance instance =
      make_instance(config, Scenario::dram_pcie_flash(), pool);

  const auto clients =
      static_cast<std::size_t>(env_int("SEMBFS_SERVE_CLIENTS", 16));
  const auto per_client =
      static_cast<std::size_t>(env_int("SEMBFS_SERVE_QUERIES", 4));

  AsciiTable table({"batch", "qps", "mean ms", "p50 ms", "p95 ms", "p99 ms",
                    "batches", "batched", "sessions"});
  CsvWriter csv({"batch", "qps", "mean_ms", "p50_ms", "p95_ms", "p99_ms",
                 "batches", "batched_queries", "session_queries"});
  double qps_batch1 = 0.0;
  double qps_best = 0.0;
  for (const std::size_t width : {std::size_t{1}, std::size_t{8},
                                  std::size_t{64}}) {
    serve::EngineConfig engine_config;
    engine_config.max_batch = width;
    engine_config.queue_capacity = clients * per_client + 1;
    serve::QueryEngine engine{instance.storage(), instance.topology(), pool,
                              engine_config};

    serve::LoadGenConfig load;
    load.clients = clients;
    load.queries_per_client = per_client;
    load.seed = config.env.seed;
    // batch 1 measures the pure session path; wider rows the MS-BFS path.
    load.options.batchable = width > 1;
    const serve::LoadGenReport report =
        serve::run_load(engine, instance.vertex_count(), load);
    engine.shutdown();
    const serve::EngineStats stats = engine.stats();

    table.add_row({std::to_string(width), format_fixed(report.qps, 1),
                   format_fixed(report.mean_ms, 2),
                   format_fixed(report.p50_ms, 2),
                   format_fixed(report.p95_ms, 2),
                   format_fixed(report.p99_ms, 2),
                   format_count(stats.batches),
                   format_count(stats.batched_queries),
                   format_count(stats.session_queries)});
    csv.add_row({std::to_string(width), format_fixed(report.qps, 2),
                 format_fixed(report.mean_ms, 3),
                 format_fixed(report.p50_ms, 3),
                 format_fixed(report.p95_ms, 3),
                 format_fixed(report.p99_ms, 3),
                 std::to_string(stats.batches),
                 std::to_string(stats.batched_queries),
                 std::to_string(stats.session_queries)});
    if (width == 1) qps_batch1 = report.qps;
    if (report.qps > qps_best) qps_best = report.qps;
  }

  std::printf("\nbatch-width sweep (%zu closed-loop clients x %zu queries "
              "each):\n", clients, per_client);
  table.print();
  std::printf("expected shape: wider batches raise QPS and cut tail "
              "latency once clients > width; batch 1 is the fairness "
              "baseline every query could fall back to.\n");
  if (qps_batch1 > 0.0)
    std::printf("best/batch-1 speedup: %.2fx\n", qps_best / qps_batch1);
  maybe_write_csv(config, "extension_serving", csv);
  return 0;
}
