// Figure 8: BFS performance (median TEPS) across the paper's alpha/beta
// grid for the three storage scenarios, plus the three baselines measured
// on the DRAM-only configuration: top-down only, bottom-up only, and the
// serial Graph500 reference implementation.
//
// Paper findings (SCALE 27): DRAM-only ~5.12 GTEPS; DRAM+PCIeFlash 4.22
// GTEPS at a=1e6,b=1a (-19.18%); DRAM+SSD 2.76 GTEPS at a=1e5,b=0.1a
// (-47.1%). Baselines: top-down only 0.6, bottom-up only 0.4, reference
// 0.04 GTEPS — i.e. the tuned hybrid beats every baseline by ~10x and the
// NVM penalty is far smaller than the 2x DRAM saving.
#include <cstdio>

#include "bench_common.hpp"
#include "bfs/reference_bfs.hpp"

using namespace sembfs;
using namespace sembfs::bench;

int main() {
  BenchConfig config = BenchConfig::resolve();
  // This is a device-sensitive TEPS comparison: default to the
  // full-fidelity device model (cheap here — the tuned hybrid rarely
  // touches the device). SEMBFS_TIME_SCALE still overrides.
  config.time_scale = env_double("SEMBFS_TIME_SCALE", 1.0);
  print_header(config,
               "Figure 8 — BFS TEPS vs (alpha, beta), scenarios + baselines",
               "DRAM 5.12 | PCIeFlash 4.22 (-19.18%) | SSD 2.76 (-47.1%) "
               "GTEPS; top-down 0.6, bottom-up 0.4, reference 0.04");

  ThreadPool pool{static_cast<std::size_t>(config.env.threads)};
  const std::vector<AlphaBeta> grid = paper_alpha_beta_grid();

  CsvWriter csv({"series", "setting", "median_teps"});
  AsciiTable table([&] {
    std::vector<std::string> headers = {"series"};
    for (const AlphaBeta& ab : grid) headers.push_back(ab.label);
    headers.push_back("best");
    return headers;
  }());

  struct SeriesBest {
    std::string name;
    double teps = 0.0;
  };
  std::vector<SeriesBest> bests;

  for (const Scenario& scenario :
       {Scenario::dram_only(), Scenario::dram_pcie_flash(),
        Scenario::dram_ssd()}) {
    Graph500Instance instance = make_instance(config, scenario, pool);
    std::vector<std::string> row = {scenario.name};
    double best = 0.0;
    for (const AlphaBeta& ab : grid) {
      BfsConfig bfs;
      bfs.policy.alpha = ab.alpha;
      bfs.policy.beta = ab.beta;
      const double teps = median_teps(instance, bfs, config.env.roots);
      best = std::max(best, teps);
      row.push_back(format_teps(teps));
      csv.add_row({scenario.name, ab.label, format_fixed(teps, 0)});
    }
    row.push_back(format_teps(best));
    table.add_row(std::move(row));
    bests.push_back({scenario.name, best});
  }

  // Baselines on the DRAM-only configuration.
  Graph500Instance dram = make_instance(config, Scenario::dram_only(), pool);
  const auto baseline_row = [&](const char* name, BfsMode mode) {
    BfsConfig bfs;
    bfs.mode = mode;
    const double teps = median_teps(dram, bfs, config.env.roots);
    std::vector<std::string> row = {name};
    for (std::size_t i = 0; i < grid.size(); ++i) row.push_back("-");
    row.push_back(format_teps(teps));
    table.add_row(std::move(row));
    csv.add_row({name, "forced", format_fixed(teps, 0)});
    bests.push_back({name, teps});
  };
  table.add_separator();
  baseline_row("top-down only (DRAM)", BfsMode::TopDownOnly);
  baseline_row("bottom-up only (DRAM)", BfsMode::BottomUpOnly);

  {
    // Serial Graph500-reference baseline: median TEPS over the same roots.
    const Csr& full = dram.full_csr();
    const auto roots = dram.select_roots(config.env.roots, 0xbf5);
    std::vector<double> teps_samples;
    for (const Vertex root : roots)
      teps_samples.push_back(reference_bfs(full, root).teps);
    const double median = compute_stats(std::move(teps_samples)).median;
    std::vector<std::string> row = {"Graph500 reference (serial)"};
    for (std::size_t i = 0; i < grid.size(); ++i) row.push_back("-");
    row.push_back(format_teps(median));
    table.add_row(std::move(row));
    csv.add_row({"reference", "serial", format_fixed(median, 0)});
    bests.push_back({"reference", median});
  }

  table.print();

  const double dram_best = bests[0].teps;
  std::printf("\ndegradation vs DRAM-only best (paper: PCIeFlash -19.18%%, "
              "SSD -47.1%%):\n");
  for (std::size_t i = 1; i < 3; ++i)
    std::printf("  %-16s %+.2f%%\n", bests[i].name.c_str(),
                (bests[i].teps / dram_best - 1.0) * 100.0);
  std::printf("hybrid best vs baselines (paper: ~8.5x over top-down, ~13x "
              "over bottom-up, ~128x over reference):\n");
  for (std::size_t i = 3; i < bests.size(); ++i)
    std::printf("  vs %-28s %.1fx\n", bests[i].name.c_str(),
                dram_best / bests[i].teps);

  maybe_write_csv(config, "fig08_bfs_performance", csv);
  return 0;
}
