// Extension: compressed on-NVM adjacency chunks (ROADMAP item 4).
//
// The paper measures ~8 device bytes per traversed edge on the semi-external
// top-down path (one raw Vertex per neighbor, plus index traffic). The
// varint chunk format delta/zigzag-packs each 4 KiB value chunk at offload
// time, so the same BFS moves fewer device bytes per edge. This sweep runs
// the identical workload under both formats on both NVM device models and
// reports the before/after bytes-per-edge, avgrq-sz, and on-device
// footprint — the acceptance target is a >= 2x bytes-per-edge reduction.
//
// The sweep runs the accelerator deployment shape — aggregated fetches
// through a ChunkCache — because compression trades in whole-chunk
// currency: a read fetches the blob span covering its logical range and
// CRC-verifies every blob, so the saving lands where reads already move
// chunk-sized ranges (cache fills decode each chunk exactly once, then
// hits serve decoded DRAM). The seed per-vertex chunked path issues
// partial-chunk requests the raw format serves byte-exact, and there
// whole-blob fetching can *inflate* traffic for sub-chunk adjacency
// runs; see the trade-off note in docs/DESIGN.md.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "obs/metrics.hpp"

using namespace sembfs;
using namespace sembfs::bench;

int main() {
  BenchConfig config = BenchConfig::resolve();
  print_header(config,
               "Extension — compressed adjacency chunks: NVM bytes/edge, "
               "request size, and footprint, raw vs varint",
               "not in the paper; its Section VI measures ~8 B of device "
               "traffic per neighbor (raw 64-bit values), which delta/varint "
               "chunk packing cuts by the graph's delta entropy");

  ThreadPool pool{static_cast<std::size_t>(config.env.threads)};
  obs::metrics().reset();
  obs::set_enabled(true);

  AsciiTable table({"scenario", "format", "nvm bytes", "ratio",
                    "bytes/edge", "avgrq-sz", "TEPS"});
  CsvWriter csv({"scenario", "format", "nvm_bytes", "nvm_raw_bytes",
                 "compression_ratio", "bytes_per_edge", "avgrq_sz",
                 "median_teps"});

  // bytes/edge per scenario, raw first then varint, for the closing summary.
  std::map<std::string, std::vector<double>> bytes_per_edge;
  for (const Scenario& base :
       {Scenario::dram_pcie_flash(), Scenario::dram_ssd()}) {
    for (const ChunkFormat format : {ChunkFormat::kRaw, ChunkFormat::kVarint}) {
      InstanceConfig ic;
      ic.kronecker.scale = config.env.scale;
      ic.kronecker.edge_factor = config.env.edge_factor;
      ic.kronecker.seed = config.env.seed;
      ic.scenario = base;
      ic.scenario.time_scale = config.time_scale;
      ic.numa_nodes = static_cast<std::size_t>(config.env.numa_nodes);
      ic.workdir = config.env.workdir;
      ic.chunk_format = format;
      Graph500Instance instance{ic, pool};

      BfsConfig bfs;
      bfs.mode = BfsMode::TopDownOnly;  // every level reads the NVM side
      bfs.aggregate_io = true;          // merged ranges through the cache
      bfs.chunk_cache_bytes = 2 << 20;  // fills move whole chunks; decode
                                        // happens once per fill
      bfs.chunk_format = format;
      const BenchmarkRun run = run_graph500_bfs_phase(
          instance, bfs, config.env.roots, /*validate=*/false, 0xbf5);

      const double per_edge = run.nvm_io.bytes_per_edge(run.traversed_edges);
      const double ratio =
          run.graph_nvm_bytes > 0
              ? static_cast<double>(run.graph_nvm_raw_bytes) /
                    static_cast<double>(run.graph_nvm_bytes)
              : 1.0;
      table.add_row({base.name, std::string(to_string(format)),
                     format_bytes(run.graph_nvm_bytes),
                     format_fixed(ratio, 2), format_fixed(per_edge, 2),
                     format_fixed(run.nvm_io.avg_request_sectors, 2),
                     format_teps(run.output.score())});
      csv.add_row({base.name, std::string(to_string(format)),
                   std::to_string(run.graph_nvm_bytes),
                   std::to_string(run.graph_nvm_raw_bytes),
                   format_fixed(ratio, 3), format_fixed(per_edge, 3),
                   format_fixed(run.nvm_io.avg_request_sectors, 3),
                   format_fixed(run.output.score(), 0)});
      bytes_per_edge[base.name].push_back(per_edge);
    }
    table.add_separator();
  }
  table.print();

  for (const auto& [name, series] : bytes_per_edge) {
    if (series.size() == 2 && series[1] > 0.0)
      std::printf("%s bytes/edge reduction: %.2fx (%.2f -> %.2f)\n",
                  name.c_str(), series[0] / series[1], series[0], series[1]);
  }
  std::printf(
      "\nexpected shape: identical BFS (same roots, same request *count* "
      "pattern) with the varint rows moving >= 2x fewer device bytes per "
      "traversed edge; avgrq-sz drops with it because each logical 4 KiB "
      "chunk travels as a smaller encoded blob.\n");

  maybe_write_csv(config, "extension_compression", csv);
  return 0;
}
