// Social-network analysis — the workload class the paper's introduction
// motivates ("a friend network ... with over 900 million vertices and over
// 100 billion edges"). Generates a Kronecker social graph, optionally
// offloads the forward graph to a simulated NVM device, and runs the
// BFS-powered analyses an analyst would: connected components, degree
// structure, hop-distance distribution and effective diameter.
//
//   ./social_network [--scale 18] [--scenario dram|pcie_flash|ssd]
#include <cstdio>

#include "analytics/components.hpp"
#include "analytics/distances.hpp"
#include "graph/degree.hpp"
#include "graph500/instance.hpp"
#include "util/format.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace sembfs;

int main(int argc, char** argv) {
  OptionParser options{"social_network — BFS-powered analysis of a "
                       "Kronecker social graph"};
  options.add_int("scale", 18, "log2 of the vertex count");
  options.add_int("edge-factor", 16, "edges per vertex");
  options.add_string("scenario", "dram",
                     "storage scenario: dram | pcie_flash | ssd");
  options.add_int("distance-samples", 8, "BFS sources for the histogram");
  options.add_int("threads", 0, "worker threads (0 = hardware)");
  options.add_int("seed", 20140519, "generator seed");
  options.add_string("workdir", "/tmp/sembfs", "directory for NVM files");
  if (!options.parse(argc, argv)) return options.help_requested() ? 0 : 1;

  ThreadPool& pool =
      default_pool(static_cast<std::size_t>(options.get_int("threads")));

  InstanceConfig config;
  config.kronecker.scale = static_cast<int>(options.get_int("scale"));
  config.kronecker.edge_factor =
      static_cast<int>(options.get_int("edge-factor"));
  config.kronecker.seed = static_cast<std::uint64_t>(options.get_int("seed"));
  config.scenario = Scenario::by_name(options.get_string("scenario"));
  config.workdir = options.get_string("workdir");
  Graph500Instance instance{config, pool};

  std::printf("network: %s people, %s friendships (%s)\n",
              format_count(static_cast<std::uint64_t>(instance.vertex_count()))
                  .c_str(),
              format_count(instance.edge_list().edge_count()).c_str(),
              config.scenario.describe().c_str());

  // 1. Who is even connected? (components via parallel label propagation,
  //    cross-checked against the BFS sweep.)
  const Csr& full = instance.full_csr();
  const ComponentsResult components =
      components_label_propagation(full, pool);
  std::printf(
      "\ncomponents: %s total; giant component %s vertices (%.1f%%); "
      "%s isolated accounts\n",
      format_count(static_cast<std::uint64_t>(components.component_count))
          .c_str(),
      format_count(static_cast<std::uint64_t>(components.largest_size))
          .c_str(),
      100.0 * static_cast<double>(components.largest_size) /
          static_cast<double>(instance.vertex_count()),
      format_count(static_cast<std::uint64_t>(components.isolated_count))
          .c_str());

  // 2. Degree structure (hubs vs long tail).
  const DegreeStats degrees = compute_degree_stats(full);
  std::printf(
      "degrees: median %lld, mean %.1f, max %s (hub); %.1f%% of accounts "
      "have no friends\n",
      static_cast<long long>(degrees.median_degree), degrees.mean_degree,
      format_count(static_cast<std::uint64_t>(degrees.max_degree)).c_str(),
      100.0 * static_cast<double>(degrees.isolated_count) /
          static_cast<double>(degrees.vertex_count));

  // 3. How far apart are people? (hop distances via hybrid BFS.)
  const auto sources = instance.select_roots(
      static_cast<int>(options.get_int("distance-samples")),
      config.kronecker.seed);
  GraphStorage storage = instance.storage();
  HybridBfsRunner runner{storage, instance.topology(), pool};
  const DistanceStats distances = sample_distances(runner, sources);

  std::printf("\nhop distances (%lld sampled sources, %s reachable pairs):\n",
              static_cast<long long>(distances.sampled_sources),
              format_count(static_cast<std::uint64_t>(
                               distances.reachable_pairs))
                  .c_str());
  AsciiTable table({"hops", "pairs", "share"});
  for (std::size_t d = 0; d < distances.histogram.size(); ++d) {
    table.add_row(
        {std::to_string(d),
         format_count(static_cast<std::uint64_t>(distances.histogram[d])),
         format_fixed(100.0 * static_cast<double>(distances.histogram[d]) /
                          static_cast<double>(distances.reachable_pairs),
                      2) +
             "%"});
  }
  table.print();
  std::printf(
      "mean distance %.2f, median %d, effective diameter (90%%) %d, max "
      "observed %d — the small world the hybrid BFS exploits.\n",
      distances.mean_distance, distances.median_distance,
      distances.effective_diameter, distances.max_observed);

  if (NvmDevice* device = instance.nvm_device()) {
    const IoStatsSnapshot io = device->stats().snapshot();
    std::printf(
        "\nNVM device during the analysis: %s requests, avgqu-sz %.2f, "
        "avgrq-sz %.1f sectors\n",
        format_count(io.requests).c_str(), io.avg_queue_length,
        io.avg_request_sectors);
  }
  return 0;
}
