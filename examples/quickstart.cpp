// Quickstart: generate a small Graph500 Kronecker graph, run one hybrid
// BFS with the paper's direction-switching rule, validate the tree, and
// print per-level statistics.
//
//   ./quickstart [--scale 18] [--edge-factor 16] [--alpha 1e4] [--beta 1e5]
#include <cstdio>

#include "bfs/hybrid_bfs.hpp"
#include "graph500/instance.hpp"
#include "util/format.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace sembfs;

int main(int argc, char** argv) {
  OptionParser options{
      "quickstart — one hybrid BFS on a Kronecker graph, with validation"};
  options.add_int("scale", 18, "log2 of the vertex count");
  options.add_int("edge-factor", 16, "edges per vertex");
  options.add_int("threads", 0, "worker threads (0 = hardware)");
  options.add_int("numa-nodes", 4, "emulated NUMA nodes");
  options.add_double("alpha", 1e4, "top-down -> bottom-up threshold");
  options.add_double("beta", 1e5, "bottom-up -> top-down threshold");
  options.add_int("seed", 12345, "generator seed");
  if (!options.parse(argc, argv)) return options.help_requested() ? 0 : 1;

  ThreadPool& pool = default_pool(
      static_cast<std::size_t>(options.get_int("threads")));

  InstanceConfig config;
  config.kronecker.scale = static_cast<int>(options.get_int("scale"));
  config.kronecker.edge_factor =
      static_cast<int>(options.get_int("edge-factor"));
  config.kronecker.seed =
      static_cast<std::uint64_t>(options.get_int("seed"));
  config.numa_nodes =
      static_cast<std::size_t>(options.get_int("numa-nodes"));

  std::printf("Generating Kronecker graph: scale=%d edge_factor=%d (N=%s, M=%s)\n",
              config.kronecker.scale, config.kronecker.edge_factor,
              format_count(static_cast<std::uint64_t>(
                               config.kronecker.vertex_count()))
                  .c_str(),
              format_count(config.kronecker.edge_count()).c_str());

  Graph500Instance instance{config, pool};
  std::printf("generation: %.3fs, construction: %.3fs, graph DRAM: %s\n",
              instance.generation_seconds(), instance.construction_seconds(),
              format_bytes(instance.graph_dram_bytes()).c_str());

  BfsConfig bfs;
  bfs.policy.alpha = options.get_double("alpha");
  bfs.policy.beta = options.get_double("beta");

  const Vertex root = instance.select_roots(1, config.kronecker.seed)[0];
  BfsResult result = instance.run_bfs(root, bfs);

  AsciiTable table({"level", "direction", "frontier", "claimed",
                    "scanned edges", "avg degree", "time (ms)"});
  for (const LevelStats& ls : result.levels) {
    table.add_row({std::to_string(ls.level), direction_name(ls.direction),
                   format_count(static_cast<std::uint64_t>(ls.frontier_vertices)),
                   format_count(static_cast<std::uint64_t>(ls.claimed_vertices)),
                   format_count(static_cast<std::uint64_t>(ls.scanned_edges)),
                   format_fixed(ls.avg_degree, 1),
                   format_fixed(ls.seconds * 1e3, 2)});
  }
  table.print();

  std::printf("root %lld: visited %s of %s vertices in %.4fs -> %s\n",
              static_cast<long long>(root),
              format_count(static_cast<std::uint64_t>(result.visited)).c_str(),
              format_count(static_cast<std::uint64_t>(instance.vertex_count()))
                  .c_str(),
              result.seconds, format_teps(result.teps).c_str());

  const ValidationResult validation = instance.validate(result);
  std::printf("validation: %s%s\n", validation.ok ? "PASSED" : "FAILED",
              validation.ok ? "" : (" — " + validation.error).c_str());
  return validation.ok ? 0 : 1;
}
