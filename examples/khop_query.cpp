// k-hop neighborhood queries via the level-stepped BfsSession API: run the
// hybrid BFS only as deep as the question requires ("who is within 3 hops
// of this account?") and stop — on an offloaded graph this also stops
// paying NVM reads the moment the answer is complete.
//
//   ./khop_query --scale 17 --hops 3 [--scenario pcie_flash]
#include <cstdio>

#include "bfs/session.hpp"
#include "graph500/instance.hpp"
#include "util/format.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace sembfs;

int main(int argc, char** argv) {
  OptionParser options{"khop_query — bounded-depth BFS with BfsSession"};
  options.add_int("scale", 17, "log2 of the vertex count");
  options.add_int("edge-factor", 16, "edges per vertex");
  options.add_int("hops", 3, "neighborhood radius");
  options.add_int("sources", 4, "number of query sources");
  options.add_string("scenario", "dram",
                     "storage scenario: dram | pcie_flash | ssd");
  options.add_int("threads", 0, "worker threads (0 = hardware)");
  options.add_int("seed", 4242, "generator seed");
  options.add_string("workdir", "/tmp/sembfs", "directory for NVM files");
  if (!options.parse(argc, argv)) return options.help_requested() ? 0 : 1;

  ThreadPool& pool =
      default_pool(static_cast<std::size_t>(options.get_int("threads")));

  InstanceConfig config;
  config.kronecker.scale = static_cast<int>(options.get_int("scale"));
  config.kronecker.edge_factor =
      static_cast<int>(options.get_int("edge-factor"));
  config.kronecker.seed = static_cast<std::uint64_t>(options.get_int("seed"));
  config.scenario = Scenario::by_name(options.get_string("scenario"));
  config.workdir = options.get_string("workdir");
  Graph500Instance instance{config, pool};

  const auto hops = static_cast<std::int32_t>(options.get_int("hops"));
  const auto sources = instance.select_roots(
      static_cast<int>(options.get_int("sources")), config.kronecker.seed);

  std::printf("%d-hop neighborhoods on a SCALE-%d graph (%s):\n\n",
              hops, config.kronecker.scale,
              config.scenario.describe().c_str());

  AsciiTable table({"source", "reached within k hops", "share of graph",
                    "levels run", "NVM requests", "time (ms)"});
  GraphStorage storage = instance.storage();
  BfsStatus status{instance.vertex_count()};
  for (const Vertex source : sources) {
    BfsSession session{storage, instance.topology(), pool, status, source,
                       BfsConfig{}};
    for (std::int32_t i = 0; i < hops && session.step(); ++i) {
    }
    const BfsResult result = session.snapshot_result();
    table.add_row(
        {std::to_string(source),
         format_count(static_cast<std::uint64_t>(result.visited)),
         format_fixed(100.0 * static_cast<double>(result.visited) /
                          static_cast<double>(instance.vertex_count()),
                      2) +
             "%",
         std::to_string(result.depth),
         format_count(result.nvm_requests),
         format_fixed(result.seconds * 1e3, 2)});
  }
  table.print();
  std::printf(
      "\nThe session stops after %d levels — unreached vertices were never "
      "touched, and on an offloaded graph the forward-graph reads stop "
      "with it.\n",
      hops);
  return 0;
}
