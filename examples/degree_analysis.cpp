// Degree-structure analysis of a Kronecker graph: distribution histogram,
// hub statistics, and the per-level average-degree trajectory of a hybrid
// BFS — the structural facts behind the paper's Figure 11 (top-down levels
// late in the search touch ~degree-1 vertices, which is what makes NVM
// reads there so expensive).
//
//   ./degree_analysis [--scale 18]
#include <cstdio>

#include "graph/degree.hpp"
#include "graph500/instance.hpp"
#include "util/format.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace sembfs;

int main(int argc, char** argv) {
  OptionParser options{"degree_analysis — Kronecker degree structure and "
                       "per-level BFS degree trajectory"};
  options.add_int("scale", 18, "log2 of the vertex count");
  options.add_int("edge-factor", 16, "edges per vertex");
  options.add_int("threads", 0, "worker threads (0 = hardware)");
  options.add_int("seed", 12345, "generator seed");
  if (!options.parse(argc, argv)) return options.help_requested() ? 0 : 1;

  ThreadPool& pool =
      default_pool(static_cast<std::size_t>(options.get_int("threads")));

  InstanceConfig config;
  config.kronecker.scale = static_cast<int>(options.get_int("scale"));
  config.kronecker.edge_factor =
      static_cast<int>(options.get_int("edge-factor"));
  config.kronecker.seed = static_cast<std::uint64_t>(options.get_int("seed"));
  Graph500Instance instance{config, pool};

  const DegreeStats stats = compute_degree_stats(instance.full_csr());
  std::printf("vertices: %s   adjacency entries: %s\n",
              format_count(static_cast<std::uint64_t>(stats.vertex_count)).c_str(),
              format_count(static_cast<std::uint64_t>(stats.edge_entry_count)).c_str());
  std::printf("degree: min=%lld median=%lld mean=%.2f max=%lld   isolated: %s (%.1f%%)\n",
              static_cast<long long>(stats.min_degree),
              static_cast<long long>(stats.median_degree), stats.mean_degree,
              static_cast<long long>(stats.max_degree),
              format_count(static_cast<std::uint64_t>(stats.isolated_count)).c_str(),
              100.0 * static_cast<double>(stats.isolated_count) /
                  static_cast<double>(stats.vertex_count));

  AsciiTable histogram({"degree bucket", "vertices", "share"});
  for (std::size_t b = 0; b < stats.log2_histogram.size(); ++b) {
    std::string label;
    if (b == 0)
      label = "0";
    else if (b == 1)
      label = "1";
    else
      label = std::to_string((1LL << (b - 2)) + 1) + " - " +
              std::to_string(1LL << (b - 1));
    histogram.add_row(
        {label,
         format_count(static_cast<std::uint64_t>(stats.log2_histogram[b])),
         format_fixed(100.0 * static_cast<double>(stats.log2_histogram[b]) /
                          static_cast<double>(stats.vertex_count),
                      2) +
             "%"});
  }
  histogram.print();

  // Per-level degree trajectory of a hybrid BFS (Figure 11's x axis).
  BfsConfig bfs;
  bfs.policy.alpha = 1e4;
  bfs.policy.beta = 1e5;
  const Vertex root = instance.select_roots(1, config.kronecker.seed)[0];
  const BfsResult result = instance.run_bfs(root, bfs);

  std::printf("\nper-level average searched degree (root %lld):\n",
              static_cast<long long>(root));
  AsciiTable levels({"level", "direction", "frontier", "avg degree"});
  for (const LevelStats& ls : result.levels)
    levels.add_row({std::to_string(ls.level), direction_name(ls.direction),
                    format_count(static_cast<std::uint64_t>(ls.frontier_vertices)),
                    format_fixed(ls.avg_degree, 1)});
  levels.print();
  std::printf(
      "\nNote the late top-down/bottom-up levels approach degree ~1 — the "
      "regime the paper identifies as pathological for NVM reads.\n");
  return 0;
}
