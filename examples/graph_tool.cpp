// graph_tool — generate / save / load / inspect graphs on disk, showing
// the serialization API. Typical workflow for big scales: construct once,
// reuse across experiment runs.
//
//   ./graph_tool generate --scale 20 --out /tmp/s20.edges
//   ./graph_tool build    --in /tmp/s20.edges --out /tmp/s20.csr
//   ./graph_tool info     --in /tmp/s20.csr
//   ./graph_tool import   --in snap_graph.txt --out /tmp/real.edges
//   ./graph_tool export   --in /tmp/s20.edges --out /tmp/s20.txt
#include <cstdio>
#include <cstring>

#include "graph/degree.hpp"
#include "graph/io_text.hpp"
#include "graph/kronecker.hpp"
#include "graph/serialize.hpp"
#include "util/format.hpp"
#include "util/options.hpp"
#include "util/timer.hpp"

using namespace sembfs;

namespace {

int cmd_generate(OptionParser& options) {
  KroneckerParams params;
  params.scale = static_cast<int>(options.get_int("scale"));
  params.edge_factor = static_cast<int>(options.get_int("edge-factor"));
  params.seed = static_cast<std::uint64_t>(options.get_int("seed"));
  ThreadPool& pool =
      default_pool(static_cast<std::size_t>(options.get_int("threads")));

  Timer timer;
  const EdgeList edges = generate_kronecker(params, pool);
  std::printf("generated %s edges over %s vertices in %.2fs\n",
              format_count(edges.edge_count()).c_str(),
              format_count(static_cast<std::uint64_t>(edges.vertex_count()))
                  .c_str(),
              timer.seconds());
  save_edge_list(edges, options.get_string("out"));
  std::printf("wrote %s (%s)\n", options.get_string("out").c_str(),
              format_bytes(edges.edge_count() * 12 + 32).c_str());
  return 0;
}

int cmd_build(OptionParser& options) {
  ThreadPool& pool =
      default_pool(static_cast<std::size_t>(options.get_int("threads")));
  Timer timer;
  const EdgeList edges = load_edge_list(options.get_string("in"));
  std::printf("loaded %s edges in %.2fs\n",
              format_count(edges.edge_count()).c_str(), timer.seconds());

  timer.reset();
  CsrBuildOptions build_options;
  build_options.sort_neighbors = true;
  const Csr csr = build_csr(edges, build_options, pool);
  std::printf("built CSR (%s entries) in %.2fs\n",
              format_count(static_cast<std::uint64_t>(csr.entry_count()))
                  .c_str(),
              timer.seconds());
  save_csr(csr, options.get_string("out"));
  std::printf("wrote %s (%s)\n", options.get_string("out").c_str(),
              format_bytes(csr.byte_size() + 80).c_str());
  return 0;
}

int cmd_info(OptionParser& options) {
  const std::string in = options.get_string("in");
  // Try CSR first, fall back to edge list.
  try {
    const Csr csr = load_csr(in);
    const DegreeStats stats = compute_degree_stats(csr);
    std::printf("%s: CSR graph\n", in.c_str());
    std::printf("  vertices: %s  adjacency entries: %s  bytes: %s\n",
                format_count(static_cast<std::uint64_t>(stats.vertex_count))
                    .c_str(),
                format_count(static_cast<std::uint64_t>(
                                 stats.edge_entry_count))
                    .c_str(),
                format_bytes(csr.byte_size()).c_str());
    std::printf("  degree: min %lld / median %lld / mean %.1f / max %lld; "
                "%lld isolated\n",
                static_cast<long long>(stats.min_degree),
                static_cast<long long>(stats.median_degree),
                stats.mean_degree,
                static_cast<long long>(stats.max_degree),
                static_cast<long long>(stats.isolated_count));
    return 0;
  } catch (const std::exception&) {
    // not a CSR; try edge list below
  }
  const EdgeList edges = load_edge_list(in);
  std::printf("%s: packed edge list\n", in.c_str());
  std::printf("  vertices: %s  edges: %s  self loops: %s\n",
              format_count(static_cast<std::uint64_t>(edges.vertex_count()))
                  .c_str(),
              format_count(edges.edge_count()).c_str(),
              format_count(edges.self_loop_count()).c_str());
  return 0;
}

int cmd_import(OptionParser& options) {
  const EdgeList edges = read_edge_list_text(options.get_string("in"));
  std::printf("imported %s edges over %s vertices\n",
              format_count(edges.edge_count()).c_str(),
              format_count(static_cast<std::uint64_t>(edges.vertex_count()))
                  .c_str());
  save_edge_list(edges, options.get_string("out"));
  std::printf("wrote %s\n", options.get_string("out").c_str());
  return 0;
}

int cmd_export(OptionParser& options) {
  const EdgeList edges = load_edge_list(options.get_string("in"));
  write_edge_list_text(edges, options.get_string("out"));
  std::printf("exported %s edges to %s\n",
              format_count(edges.edge_count()).c_str(),
              options.get_string("out").c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: graph_tool <generate|build|info|import|export> "
                 "[options]\n");
    return 1;
  }
  const std::string command = argv[1];
  OptionParser options{"graph_tool " + command};
  options.add_int("scale", 18, "log2 vertex count (generate)");
  options.add_int("edge-factor", 16, "edges per vertex (generate)");
  options.add_int("seed", 12345, "generator seed (generate)");
  options.add_int("threads", 0, "worker threads (0 = hardware)");
  options.add_string("in", "", "input file (build/info)");
  options.add_string("out", "", "output file (generate/build)");
  if (!options.parse(argc - 1, argv + 1))
    return options.help_requested() ? 0 : 1;

  try {
    if (command == "generate") {
      if (options.get_string("out").empty()) {
        std::fprintf(stderr, "generate requires --out\n");
        return 1;
      }
      return cmd_generate(options);
    }
    if (command == "build") {
      if (options.get_string("in").empty() ||
          options.get_string("out").empty()) {
        std::fprintf(stderr, "build requires --in and --out\n");
        return 1;
      }
      return cmd_build(options);
    }
    if (command == "info") {
      if (options.get_string("in").empty()) {
        std::fprintf(stderr, "info requires --in\n");
        return 1;
      }
      return cmd_info(options);
    }
    if (command == "import" || command == "export") {
      if (options.get_string("in").empty() ||
          options.get_string("out").empty()) {
        std::fprintf(stderr, "%s requires --in and --out\n", command.c_str());
        return 1;
      }
      return command == "import" ? cmd_import(options) : cmd_export(options);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 1;
}
