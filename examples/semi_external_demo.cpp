// Semi-external memory walkthrough: builds the same graph twice — once all
// in DRAM, once with the forward graph offloaded to a simulated NVM device —
// runs the same BFS roots on both, and reports the TEPS gap plus the
// device-level I/O behaviour (requests, queue length, request size). This
// is the paper's core claim in miniature.
//
//   ./semi_external_demo [--scale 17] [--device pcie_flash|sata_ssd]
#include <cstdio>

#include "graph500/benchmark.hpp"
#include "util/format.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace sembfs;

int main(int argc, char** argv) {
  OptionParser options{
      "semi_external_demo — DRAM-only vs forward-graph-on-NVM comparison"};
  options.add_int("scale", 17, "log2 of the vertex count");
  options.add_int("edge-factor", 16, "edges per vertex");
  options.add_string("device", "pcie_flash",
                     "NVM device profile: pcie_flash | sata_ssd");
  options.add_int("roots", 8, "number of BFS roots");
  options.add_double("alpha", 1e6, "top-down -> bottom-up threshold");
  options.add_double("beta", 1e6, "bottom-up -> top-down threshold");
  options.add_int("threads", 0, "worker threads (0 = hardware)");
  options.add_double("time-scale", 1.0, "device service-time multiplier");
  options.add_string("workdir", "/tmp/sembfs", "directory for NVM files");
  if (!options.parse(argc, argv)) return options.help_requested() ? 0 : 1;

  ThreadPool& pool =
      default_pool(static_cast<std::size_t>(options.get_int("threads")));

  auto make_config = [&](const Scenario& scenario) {
    BenchmarkConfig config;
    config.instance.kronecker.scale =
        static_cast<int>(options.get_int("scale"));
    config.instance.kronecker.edge_factor =
        static_cast<int>(options.get_int("edge-factor"));
    config.instance.scenario = scenario;
    config.instance.scenario.time_scale = options.get_double("time-scale");
    config.instance.workdir = options.get_string("workdir");
    config.num_roots = static_cast<int>(options.get_int("roots"));
    config.bfs.policy.alpha = options.get_double("alpha");
    config.bfs.policy.beta = options.get_double("beta");
    return config;
  };

  const std::string device = options.get_string("device");
  const Scenario nvm_scenario = device == "sata_ssd"
                                    ? Scenario::dram_ssd()
                                    : Scenario::dram_pcie_flash();

  std::printf("== %s ==\n", Scenario::dram_only().describe().c_str());
  const BenchmarkRun dram = run_graph500(make_config(Scenario::dram_only()), pool);
  std::printf("median: %s\n\n", format_teps(dram.output.score()).c_str());

  std::printf("== %s ==\n", nvm_scenario.describe().c_str());
  const BenchmarkRun nvm = run_graph500(make_config(nvm_scenario), pool);
  std::printf("median: %s\n\n", format_teps(nvm.output.score()).c_str());

  AsciiTable table({"metric", "DRAM-only", nvm_scenario.name});
  table.add_row({"median TEPS", format_teps(dram.output.score()),
                 format_teps(nvm.output.score())});
  table.add_row({"graph bytes in DRAM", format_bytes(dram.graph_dram_bytes),
                 format_bytes(nvm.graph_dram_bytes)});
  table.add_row({"graph bytes on NVM", format_bytes(dram.graph_nvm_bytes),
                 format_bytes(nvm.graph_nvm_bytes)});
  table.add_row({"NVM requests", "0",
                 format_count(nvm.nvm_io.requests)});
  table.add_row({"NVM avgqu-sz", "-",
                 format_fixed(nvm.nvm_io.avg_queue_length, 2)});
  table.add_row({"NVM avgrq-sz (sectors)", "-",
                 format_fixed(nvm.nvm_io.avg_request_sectors, 2)});
  table.print();

  const double degradation =
      dram.output.score() > 0.0
          ? (1.0 - nvm.output.score() / dram.output.score()) * 100.0
          : 0.0;
  const double dram_saved =
      dram.graph_dram_bytes > 0
          ? (1.0 - static_cast<double>(nvm.graph_dram_bytes) /
                       static_cast<double>(dram.graph_dram_bytes)) *
                100.0
          : 0.0;
  std::printf(
      "\nDRAM reduced by %.1f%% at %.1f%% TEPS degradation "
      "(paper, SCALE 27: ~50%% DRAM at 19.18%% degradation on PCIe flash, "
      "47.1%% on SATA SSD)\n",
      dram_saved, degradation);
  return 0;
}
