// Parameter sweep — finds the best (alpha, beta) for a given graph and
// storage scenario and writes the full surface as CSV; the interactive
// companion to the paper's Figure 7 methodology.
//
//   ./parameter_sweep --scale 17 --scenario pcie_flash --csv /tmp/sweep.csv
#include <cstdio>

#include "graph500/benchmark.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace sembfs;

int main(int argc, char** argv) {
  OptionParser options{"parameter_sweep — alpha/beta TEPS surface for one "
                       "graph + scenario"};
  options.add_int("scale", 16, "log2 of the vertex count");
  options.add_int("edge-factor", 16, "edges per vertex");
  options.add_string("scenario", "dram",
                     "storage scenario: dram | pcie_flash | ssd");
  options.add_int("roots", 8, "BFS roots per setting");
  options.add_double("alpha-min", 1e1, "smallest alpha");
  options.add_double("alpha-max", 1e6, "largest alpha (x10 steps)");
  options.add_int("threads", 0, "worker threads (0 = hardware)");
  options.add_double("time-scale", 0.1, "device service-time multiplier");
  options.add_string("csv", "", "write the surface to this CSV file");
  options.add_string("workdir", "/tmp/sembfs", "directory for NVM files");
  if (!options.parse(argc, argv)) return options.help_requested() ? 0 : 1;

  ThreadPool& pool =
      default_pool(static_cast<std::size_t>(options.get_int("threads")));

  InstanceConfig config;
  config.kronecker.scale = static_cast<int>(options.get_int("scale"));
  config.kronecker.edge_factor =
      static_cast<int>(options.get_int("edge-factor"));
  config.scenario = Scenario::by_name(options.get_string("scenario"));
  config.scenario.time_scale = options.get_double("time-scale");
  config.workdir = options.get_string("workdir");
  Graph500Instance instance{config, pool};
  std::printf("%s, SCALE %d\n", config.scenario.describe().c_str(),
              config.kronecker.scale);

  const std::vector<double> beta_factors = {10.0, 1.0, 0.1};
  CsvWriter csv({"alpha", "beta", "median_teps"});
  AsciiTable table({"alpha", "b=10a", "b=1a", "b=0.1a"});

  double best_teps = 0.0;
  double best_alpha = 0.0;
  double best_beta = 0.0;
  for (double alpha = options.get_double("alpha-min");
       alpha <= options.get_double("alpha-max") * 1.0001; alpha *= 10.0) {
    std::vector<std::string> row = {format_scientific(alpha)};
    for (const double factor : beta_factors) {
      BfsConfig bfs;
      bfs.policy.alpha = alpha;
      bfs.policy.beta = alpha * factor;
      const BenchmarkRun run = run_graph500_bfs_phase(
          instance, bfs, static_cast<int>(options.get_int("roots")),
          /*validate=*/false, 0xbf5);
      const double teps = run.output.score();
      row.push_back(format_teps(teps));
      csv.add_row({format_scientific(alpha),
                   format_scientific(alpha * factor),
                   format_fixed(teps, 0)});
      if (teps > best_teps) {
        best_teps = teps;
        best_alpha = alpha;
        best_beta = alpha * factor;
      }
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\nbest: %s at alpha=%s beta=%s\n",
              format_teps(best_teps).c_str(),
              format_scientific(best_alpha).c_str(),
              format_scientific(best_beta).c_str());

  const std::string csv_path = options.get_string("csv");
  if (!csv_path.empty()) {
    if (csv.write_file(csv_path))
      std::printf("surface written to %s\n", csv_path.c_str());
    else
      std::fprintf(stderr, "failed to write %s\n", csv_path.c_str());
  }
  return 0;
}
