// Full Graph500 benchmark run under a chosen storage scenario — the
// paper's complete experimental pipeline in one command:
//
//   ./graph500_runner --scale 20 --scenario pcie_flash --roots 64 \
//                     --alpha 1e6 --beta 1e6
//
// Prints the official-style Graph500 output block plus the NVM iostat
// summary (avgqu-sz / avgrq-sz, Figures 12-13) when a device is in play.
#include <atomic>
#include <cstdio>
#include <random>
#include <stdexcept>
#include <thread>

#include "bfs/reference_bfs.hpp"
#include "bfs/validate.hpp"
#include "engine/components_program.hpp"
#include "graph/mutable_graph.hpp"
#include "engine/pagerank_program.hpp"
#include "engine/program_session.hpp"
#include "engine/triangle_program.hpp"
#include "graph500/benchmark.hpp"
#include "obs/export.hpp"
#include "graph/kronecker.hpp"
#include "serve/engine.hpp"
#include "serve/load_gen.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "shard/sharded_bfs.hpp"
#include "util/format.hpp"
#include "util/options.hpp"
#include "util/statistics.hpp"

using namespace sembfs;

int main(int argc, char** argv) {
  OptionParser options{"graph500_runner — the 4-step Graph500 benchmark "
                       "with semi-external graph offloading"};
  options.add_int("scale", 18, "log2 of the vertex count");
  options.add_int("edge-factor", 16, "edges per vertex");
  options.add_string("scenario", "dram",
                     "storage scenario: dram | pcie_flash | ssd");
  options.add_int("roots", 16, "number of BFS roots (spec: 64)");
  options.add_double("alpha", 1e4, "top-down -> bottom-up threshold");
  options.add_double("beta", 1e5, "bottom-up -> top-down threshold");
  options.add_string("mode", "hybrid",
                     "BFS mode: hybrid | top-down | bottom-up");
  options.add_string("frontier-rep", "auto",
                     "bottom-up next-frontier representation: "
                     "auto | queue | bitmap");
  options.add_int("shards", 0,
                  "emulated multi-node mode: run the BFS across this many "
                  "shards, each with its own NVM stack (0 = single node)");
  options.add_int("shard-rows", 0,
                  "force the shard grid height (0 = as square as the "
                  "shard count allows)");
  options.add_string("shard-format", "raw",
                     "per-shard on-NVM adjacency layout: raw | varint");
  options.add_string("frontier-encoding", "auto",
                     "sharded frontier/membership wire encoding: "
                     "auto | bitmap | varint");
  options.add_int("threads", 0, "worker threads (0 = hardware)");
  options.add_int("numa-nodes", 4, "emulated NUMA nodes");
  options.add_int("backward-dram-edges", -1,
                  "cap on DRAM edges/vertex in the backward graph "
                  "(-1 = all in DRAM)");
  options.add_double("time-scale", 1.0,
                     "multiplier on simulated device service times");
  options.add_int("seed", 12345, "generator seed");
  options.add_string("workdir", "/tmp/sembfs", "directory for NVM files");
  options.add_flag("no-validate", "skip Step 4 validation");
  options.add_flag("aggregate-io",
                   "merge each dequeue batch's reads into large requests");
  options.add_int("io-queue-depth", 0,
                  "async I/O workers for batch prefetch (0 = synchronous)");
  options.add_int("chunk-cache-bytes", 0,
                  "DRAM chunk cache capacity in bytes (0 = no cache)");
  options.add_string("chunk-format", "raw",
                     "on-NVM adjacency layout: raw | varint "
                     "(varint = delta-compressed chunks)");
  options.add_flag("verify-checksums",
                   "verify fetched chunks against offload-time CRC32s "
                   "(needs --chunk-cache-bytes)");
  options.add_int("io-error-budget", 0,
                  "hard fetch failures tolerated per top-down level before "
                  "falling back to DRAM bottom-up");
  options.add_string("analytics", "",
                     "run one whole-graph analytics program through the "
                     "vertex-program engine instead of the Graph500 root "
                     "loop: cc | pagerank | tc");
  options.add_double("pagerank-tolerance", 1e-8,
                     "PageRank Linf convergence tolerance");
  options.add_int("pagerank-max-iters", 100, "PageRank iteration cap");
  options.add_flag("serve",
                   "serving mode: run a concurrent query engine with a "
                   "closed-loop load generator instead of the Graph500 "
                   "root loop");
  options.add_int("serve-clients", 4, "closed-loop client threads");
  options.add_int("serve-queries", 16, "queries per client");
  options.add_int("serve-queue", 256, "admission queue capacity");
  options.add_int("serve-slots", 4, "reusable BfsStatus session slots");
  options.add_int("serve-batch", 64,
                  "max MS-BFS lanes per batch; <= 1 disables batching "
                  "(every query runs as its own session)");
  options.add_double("serve-deadline-ms", 0.0,
                     "per-query end-to-end deadline (0 = none)");
  options.add_int("serve-seed", 42, "load generator seed");
  options.add_double("serve-zipf", 0.0,
                     "Zipf exponent for root popularity (0 = uniform; "
                     "hubs live at low vertex ids)");
  options.add_string("serve-arrival", "closed",
                     "arrival pattern: closed | burst | diurnal");
  options.add_double("serve-burst", 0.0,
                     "burst duty cycle in (0,1]: fraction of each period "
                     "clients submit in (> 0 implies --serve-arrival burst)");
  options.add_double("serve-period-ms", 200.0, "burst/diurnal cycle length");
  options.add_double("serve-think-ms", 1.0, "diurnal base think time");
  options.add_int("serve-tenants", 1,
                  "tenant count, assigned round-robin over clients");
  options.add_int("serve-tenant-quota", 0,
                  "per-tenant in-flight quota (0 = unlimited)");
  options.add_double("serve-cache-mb", 0.0,
                     "hot-root result cache capacity in MiB (0 = disabled)");
  options.add_string("serve-planner", "cost", "batch planner: cost | fifo");
  options.add_int("serve-high-clients", 0,
                  "leading clients that submit Priority::High");
  options.add_int("serve-high-reserve", 0,
                  "queue slots reserved for the high-priority lane");
  options.add_int("serve-retries", 0,
                  "max resubmissions after Rejected per logical query "
                  "(exponential backoff)");
  options.add_int("serve-batch-queries", 128,
                  "max queries per batch, same-root riders included "
                  "(0 = unlimited)");
  options.add_int("mutate", 0,
                  "serving mode only: edge-update batches applied through "
                  "the mutable graph layer while queries run (0 = sealed)");
  options.add_int("mutate-batch", 64, "edge ops per mutation batch");
  options.add_double("mutate-remove-frac", 0.125,
                     "fraction of each batch that removes a previously "
                     "inserted edge (the rest are inserts)");
  options.add_int("mutate-compact-every", 0,
                  "compact after every K mutation batches (0 = never)");
  options.add_double("mutate-pause-ms", 1.0,
                     "pause between mutation batches");
  options.add_int("mutate-seed", 777, "mutation op-stream seed");
  options.add_string("metrics-out", "",
                     "write the metrics registry as JSON to this path "
                     "(enables metrics collection)");
  options.add_string("metrics-csv", "",
                     "write the metrics registry as CSV to this path "
                     "(enables metrics collection)");
  options.add_string("trace-out", "",
                     "write per-level trace spans as JSON to this path "
                     "(enables metrics collection)");
  FaultPlan::register_options(options);
  RetryPolicy::register_options(options);
  if (!options.parse(argc, argv)) return options.help_requested() ? 0 : 1;

  ThreadPool& pool =
      default_pool(static_cast<std::size_t>(options.get_int("threads")));

  const std::string metrics_out = options.get_string("metrics-out");
  const std::string metrics_csv = options.get_string("metrics-csv");
  const std::string trace_out = options.get_string("trace-out");
  obs::TraceLog trace_log;
  if (!metrics_out.empty() || !metrics_csv.empty() || !trace_out.empty()) {
    obs::metrics().reset();  // this run's numbers only
    obs::set_enabled(true);
  }

  BenchmarkConfig config;
  config.instance.kronecker.scale =
      static_cast<int>(options.get_int("scale"));
  config.instance.kronecker.edge_factor =
      static_cast<int>(options.get_int("edge-factor"));
  config.instance.kronecker.seed =
      static_cast<std::uint64_t>(options.get_int("seed"));
  config.instance.scenario = Scenario::by_name(options.get_string("scenario"));
  config.instance.scenario.time_scale = options.get_double("time-scale");
  config.instance.scenario.backward_dram_edges =
      options.get_int("backward-dram-edges");
  config.instance.numa_nodes =
      static_cast<std::size_t>(options.get_int("numa-nodes"));
  config.instance.workdir = options.get_string("workdir");
  config.num_roots = static_cast<int>(options.get_int("roots"));
  config.validate = !options.get_flag("no-validate");
  config.bfs.policy.alpha = options.get_double("alpha");
  config.bfs.policy.beta = options.get_double("beta");
  config.bfs.aggregate_io = options.get_flag("aggregate-io");
  config.bfs.io_queue_depth =
      static_cast<std::size_t>(options.get_int("io-queue-depth"));
  config.bfs.chunk_cache_bytes =
      static_cast<std::size_t>(options.get_int("chunk-cache-bytes"));
  const auto chunk_format =
      parse_chunk_format(std::string_view{options.get_string("chunk-format")});
  if (!chunk_format.has_value()) {
    std::fprintf(stderr, "unknown --chunk-format '%s'\n",
                 options.get_string("chunk-format").c_str());
    return 1;
  }
  config.instance.chunk_format = *chunk_format;
  config.bfs.chunk_format = *chunk_format;
  config.bfs.verify_chunk_checksums = options.get_flag("verify-checksums");
  config.bfs.io_error_budget =
      static_cast<std::uint64_t>(options.get_int("io-error-budget"));
  config.bfs.io_retry = RetryPolicy::from_options(options);
  config.fault_plan = FaultPlan::from_options(options);
  if (!trace_out.empty()) config.bfs.trace = &trace_log;

  const std::string mode = options.get_string("mode");
  if (mode == "hybrid")
    config.bfs.mode = BfsMode::Hybrid;
  else if (mode == "top-down")
    config.bfs.mode = BfsMode::TopDownOnly;
  else if (mode == "bottom-up")
    config.bfs.mode = BfsMode::BottomUpOnly;
  else {
    std::fprintf(stderr, "unknown --mode '%s'\n", mode.c_str());
    return 1;
  }

  const std::string frontier_rep = options.get_string("frontier-rep");
  if (frontier_rep == "auto")
    config.bfs.frontier_mode = FrontierMode::Auto;
  else if (frontier_rep == "queue")
    config.bfs.frontier_mode = FrontierMode::ForceQueue;
  else if (frontier_rep == "bitmap")
    config.bfs.frontier_mode = FrontierMode::ForceBitmap;
  else {
    std::fprintf(stderr, "unknown --frontier-rep '%s'\n", frontier_rep.c_str());
    return 1;
  }

  std::printf("scenario: %s\n", config.instance.scenario.describe().c_str());

  const std::int64_t shards = options.get_int("shards");
  if (shards > 0) {
    // Sharded mode: emulated multi-node BFS over 2D edge blocks with
    // per-shard NVM stacks and compressed frontier exchange. Prints a
    // dist_* key:value block (parsed by the sharded-bfs CI job).
    const auto shard_format = parse_chunk_format(
        std::string_view{options.get_string("shard-format")});
    if (!shard_format.has_value()) {
      std::fprintf(stderr, "unknown --shard-format '%s'\n",
                   options.get_string("shard-format").c_str());
      return 1;
    }
    shard::EncodingChoice encoding;
    try {
      encoding = shard::encoding_choice_from_name(
          options.get_string("frontier-encoding"));
    } catch (const std::invalid_argument&) {
      std::fprintf(stderr, "unknown --frontier-encoding '%s'\n",
                   options.get_string("frontier-encoding").c_str());
      return 1;
    }

    const EdgeList edges =
        generate_kronecker(config.instance.kronecker, pool);
    const Csr full = build_csr(edges, CsrBuildOptions{}, pool);

    // One pool worker per shard rank; widen the pool when the machine
    // (or --threads) offers fewer workers than emulated nodes.
    std::optional<ThreadPool> wide_pool;
    if (pool.size() < static_cast<std::size_t>(shards))
      wide_pool.emplace(static_cast<std::size_t>(shards));
    ThreadPool& shard_pool = wide_pool ? *wide_pool : pool;

    shard::ShardNodeConfig node_config;
    node_config.format = *shard_format;
    node_config.io_queue_depth = config.bfs.io_queue_depth;
    node_config.cache_bytes = config.bfs.chunk_cache_bytes;
    node_config.verify_checksums = config.bfs.verify_chunk_checksums;
    node_config.retry = config.bfs.io_retry;
    shard::ShardedBfs sharded{
        edges,
        static_cast<std::size_t>(shards),
        shard_pool,
        config.instance.scenario.effective_profile(),
        config.instance.workdir + "/sharded",
        node_config,
        static_cast<std::size_t>(options.get_int("shard-rows"))};
    if (config.fault_plan.enabled())
      sharded.arm_fault_plans(config.fault_plan);

    shard::ShardedBfsConfig bfs_config;
    bfs_config.policy = config.bfs.policy;
    bfs_config.frontier_encoding = encoding;
    if (config.bfs.mode == BfsMode::TopDownOnly)
      bfs_config.mode = shard::ShardedBfsConfig::Mode::TopDownOnly;
    else if (config.bfs.mode == BfsMode::BottomUpOnly)
      bfs_config.mode = shard::ShardedBfsConfig::Mode::BottomUpOnly;

    // Same root sampling for every configuration of one (scale, seed):
    // the CI job compares per-level profiles across encodings and modes.
    std::mt19937_64 rng{config.instance.kronecker.seed};
    std::uniform_int_distribution<Vertex> pick{0, edges.vertex_count() - 1};
    std::vector<Vertex> roots;
    while (roots.size() < static_cast<std::size_t>(config.num_roots)) {
      const Vertex candidate = pick(rng);
      if (full.degree(candidate) > 0) roots.push_back(candidate);
    }

    const auto& grid = sharded.grid();
    std::printf(
        "dist_shards: %lld\ndist_grid: %zux%zu\ndist_format: %s\n"
        "dist_frontier_encoding: %s\ndist_total_nvm_bytes: %llu\n"
        "dist_max_shard_nvm_bytes: %llu\ndist_roots: %d\n",
        static_cast<long long>(shards), grid.rows(), grid.cols(),
        std::string(to_string(*shard_format)).c_str(),
        shard::encoding_choice_name(encoding),
        static_cast<unsigned long long>(sharded.nvm_byte_size()),
        static_cast<unsigned long long>(sharded.max_shard_nvm_byte_size()),
        config.num_roots);

    std::vector<double> teps;
    std::uint64_t io_failures = 0;
    bool degraded = false;
    bool all_exact = true;
    for (std::size_t r = 0; r < roots.size(); ++r) {
      const shard::ShardedBfsResult result =
          sharded.run(roots[r], bfs_config);
      teps.push_back(result.teps);
      io_failures += result.io_failures;
      degraded = degraded || result.degraded;

      // Reference-exact or the run fails: levels against the serial
      // in-memory BFS, tree shape via Graph500 Step 4.
      const ReferenceBfsResult ref = reference_bfs(full, roots[r]);
      bool exact = result.visited == ref.visited;
      for (Vertex v = 0; exact && v < edges.vertex_count(); ++v)
        exact = result.level[static_cast<std::size_t>(v)] ==
                ref.level[static_cast<std::size_t>(v)];
      if (config.validate) {
        const ValidationResult check =
            validate_bfs(edges, roots[r], result.parent, result.level);
        if (!check.ok) {
          std::fprintf(stderr, "root %lld failed validation: %s\n",
                       static_cast<long long>(roots[r]),
                       check.error.c_str());
          exact = false;
        }
      }
      all_exact = all_exact && exact;

      if (r == 0) {
        // Per-level communication profile of the first root: the
        // direction switch's byte collapse, one line per level.
        for (const shard::ShardLevelStats& ls : result.levels)
          std::printf(
              "dist_level_%d: direction=%s frontier=%lld claimed=%lld "
              "frontier_bytes=%llu membership_bytes=%llu "
              "claim_bytes=%llu remote_bytes=%llu messages=%llu\n",
              ls.level, direction_name(ls.direction),
              static_cast<long long>(ls.frontier_vertices),
              static_cast<long long>(ls.claimed_vertices),
              static_cast<unsigned long long>(ls.frontier_bytes),
              static_cast<unsigned long long>(ls.membership_bytes),
              static_cast<unsigned long long>(ls.claim_bytes),
              static_cast<unsigned long long>(ls.remote_bytes),
              static_cast<unsigned long long>(ls.remote_messages));
        double exchange_s = 0.0;
        double compute_s = 0.0;
        for (const shard::ShardLevelStats& ls : result.levels) {
          exchange_s += ls.exchange_seconds;
          compute_s += ls.compute_seconds;
        }
        std::printf(
            "dist_depth: %d\ndist_visited: %lld\n"
            "dist_remote_bytes: %llu\ndist_remote_messages: %llu\n"
            "dist_exchange_seconds: %.6f\ndist_compute_seconds: %.6f\n",
            result.depth, static_cast<long long>(result.visited),
            static_cast<unsigned long long>(result.total_remote_bytes),
            static_cast<unsigned long long>(result.total_remote_messages),
            exchange_s, compute_s);
      }
    }
    const SampleStats stats = compute_stats(std::move(teps));
    std::printf(
        "dist_median_TEPS: %.6e\ndist_io_failures: %llu\n"
        "dist_degraded: %d\ndist_exact: %s\n",
        stats.median, static_cast<unsigned long long>(io_failures),
        degraded ? 1 : 0, all_exact ? "ok" : "MISMATCH");

    bool dist_exports_ok = true;
    if (!metrics_out.empty() &&
        !obs::write_metrics_json(obs::metrics(), metrics_out)) {
      std::fprintf(stderr, "failed to write metrics JSON to %s\n",
                   metrics_out.c_str());
      dist_exports_ok = false;
    }
    if (!metrics_csv.empty() &&
        !obs::write_metrics_csv(obs::metrics(), metrics_csv)) {
      std::fprintf(stderr, "failed to write metrics CSV to %s\n",
                   metrics_csv.c_str());
      dist_exports_ok = false;
    }
    return all_exact && dist_exports_ok ? 0 : 1;
  }

  const std::string analytics = options.get_string("analytics");
  if (!analytics.empty()) {
    // Analytics mode: build the instance once, run one vertex program
    // through the engine, print a key:value block like the serve mode.
    Graph500Instance instance{config.instance, pool};
    if (config.fault_plan.enabled() && instance.nvm_device() != nullptr)
      instance.nvm_device()->set_fault_plan(config.fault_plan);

    std::unique_ptr<engine::VertexProgram> program;
    if (analytics == "cc") {
      program = std::make_unique<engine::ComponentsProgram>();
    } else if (analytics == "pagerank") {
      engine::PageRankOptions pr;
      pr.tolerance = options.get_double("pagerank-tolerance");
      pr.max_iterations =
          static_cast<std::int32_t>(options.get_int("pagerank-max-iters"));
      program = std::make_unique<engine::PageRankProgram>(pr);
    } else if (analytics == "tc") {
      program = std::make_unique<engine::TriangleProgram>();
    } else {
      std::fprintf(stderr, "unknown --analytics '%s'\n", analytics.c_str());
      return 1;
    }

    engine::ProgramSession session{*program, instance.storage(),
                                   instance.topology(), pool, config.bfs};
    bool failed = false;
    std::string error;
    try {
      session.run();
    } catch (const NvmIoError& e) {
      failed = true;
      error = e.what();
    }

    std::printf(
        "analytics: %s\nanalytics_supersteps: %d\nanalytics_seconds: %.3f\n"
        "analytics_scanned_edges: %lld\nanalytics_nvm_requests: %llu\n"
        "analytics_io_failures: %llu\nanalytics_degraded_supersteps: %d\n",
        analytics.c_str(), session.supersteps_executed(), session.seconds(),
        static_cast<long long>(session.scanned_edges_push() +
                               session.scanned_edges_pull()),
        static_cast<unsigned long long>(session.nvm_requests()),
        static_cast<unsigned long long>(session.io_failures()),
        session.degraded_supersteps());
    if (failed) std::printf("analytics_error: %s\n", error.c_str());

    if (analytics == "cc") {
      auto& cc = static_cast<engine::ComponentsProgram&>(*program);
      const std::vector<Vertex> labels = cc.labels();
      std::vector<bool> seen(labels.size(), false);
      std::int64_t components = 0;
      for (const Vertex l : labels)
        if (!seen[static_cast<std::size_t>(l)]) {
          seen[static_cast<std::size_t>(l)] = true;
          ++components;
        }
      std::printf("components: %lld\n", static_cast<long long>(components));
    } else if (analytics == "pagerank") {
      auto& pr = static_cast<engine::PageRankProgram&>(*program);
      double sum = 0.0;
      for (const double r : pr.ranks()) sum += r;
      std::printf("pagerank_iterations: %d\npagerank_delta: %.3e\n"
                  "pagerank_sum: %.6f\n",
                  pr.iterations(), pr.last_delta(), sum);
    } else if (analytics == "tc") {
      auto& tc = static_cast<engine::TriangleProgram&>(*program);
      std::printf("triangles: %lld\n",
                  static_cast<long long>(tc.triangles()));
    }

    bool analytics_exports_ok = true;
    if (!metrics_out.empty() &&
        !obs::write_metrics_json(obs::metrics(), metrics_out)) {
      std::fprintf(stderr, "failed to write metrics JSON to %s\n",
                   metrics_out.c_str());
      analytics_exports_ok = false;
    }
    if (!metrics_csv.empty() &&
        !obs::write_metrics_csv(obs::metrics(), metrics_csv)) {
      std::fprintf(stderr, "failed to write metrics CSV to %s\n",
                   metrics_csv.c_str());
      analytics_exports_ok = false;
    }
    return !failed && analytics_exports_ok ? 0 : 1;
  }

  const std::int64_t mutate_batches = options.get_int("mutate");
  if (mutate_batches > 0 && !options.get_flag("serve")) {
    std::fprintf(stderr, "--mutate requires --serve\n");
    return 1;
  }

  if (options.get_flag("serve")) {
    // Serving mode: one shared instance, many concurrent queries.
    Graph500Instance instance{config.instance, pool};
    if (config.fault_plan.enabled() && instance.nvm_device() != nullptr)
      instance.nvm_device()->set_fault_plan(config.fault_plan);

    // Live-mutation serving: layer a MutableGraph over the instance's
    // edge list and point the engine at it; a mutator thread publishes
    // delta (and optionally compacted) snapshots while the load runs.
    // The graph gets its own pool so compaction rebuilds never contend
    // with the engine dispatcher's traversal pool (docs/MUTATIONS.md).
    std::optional<ThreadPool> mutate_pool;
    std::optional<MutableGraph> mutable_graph;
    std::shared_ptr<NvmDevice> mutable_device;
    if (mutate_batches > 0) {
      MutableGraphConfig mg;
      mg.numa_nodes = config.instance.numa_nodes;
      mg.chunk_bytes = config.instance.chunk_bytes;
      mg.chunk_format = config.instance.chunk_format;
      mg.backward_dram_edges = config.instance.scenario.backward_dram_edges;
      if (config.instance.scenario.offload_forward)
        mg.forward = MutableForwardKind::kExternal;
      if (mg.forward != MutableForwardKind::kDram ||
          mg.backward_dram_edges >= 0) {
        mg.workdir = config.instance.workdir + "/mutable";
        mutable_device = std::make_shared<NvmDevice>(
            config.instance.scenario.effective_profile());
        mg.device = mutable_device;
      }
      mutate_pool.emplace(std::max<std::size_t>(2, pool.size() / 2));
      mutable_graph.emplace(instance.edge_list(), mg, *mutate_pool);
      // Armed after generation 0 is sealed so only the serving-time reads
      // (and compaction rebuilds) see injected faults.
      if (config.fault_plan.enabled() && mutable_device != nullptr)
        mutable_device->set_fault_plan(config.fault_plan);
    }

    const std::int64_t max_batch = options.get_int("serve-batch");
    serve::EngineConfig engine_config;
    engine_config.queue_capacity =
        static_cast<std::size_t>(options.get_int("serve-queue"));
    engine_config.session_slots =
        static_cast<std::size_t>(options.get_int("serve-slots"));
    engine_config.max_batch = max_batch > 1
                                  ? static_cast<std::size_t>(max_batch)
                                  : std::size_t{1};
    engine_config.default_deadline_ms =
        options.get_double("serve-deadline-ms");
    engine_config.bfs = config.bfs;
    const std::string planner = options.get_string("serve-planner");
    if (planner != "cost" && planner != "fifo") {
      std::fprintf(stderr, "unknown --serve-planner '%s'\n", planner.c_str());
      return 1;
    }
    engine_config.planner = planner == "fifo" ? serve::PlannerMode::Fifo
                                              : serve::PlannerMode::CostAware;
    engine_config.max_batch_queries =
        static_cast<std::size_t>(options.get_int("serve-batch-queries"));
    engine_config.tenant_quota =
        static_cast<std::uint64_t>(options.get_int("serve-tenant-quota"));
    engine_config.high_reserve =
        static_cast<std::size_t>(options.get_int("serve-high-reserve"));
    engine_config.cache_bytes = static_cast<std::size_t>(
        options.get_double("serve-cache-mb") * 1024.0 * 1024.0);
    std::optional<serve::QueryEngine> engine_store;
    if (mutable_graph)
      engine_store.emplace(*mutable_graph, instance.topology(), pool,
                           engine_config);
    else
      engine_store.emplace(instance.storage(), instance.topology(), pool,
                           engine_config);
    serve::QueryEngine& engine = *engine_store;

    // The mutator publishes insert-heavy batches (removes only hit edges
    // this thread inserted earlier, so every tombstone is meaningful).
    std::thread mutator;
    std::uint64_t mutate_ops = 0;  // written before join, read after
    if (mutable_graph) {
      mutator = std::thread{[&] {
        std::mt19937_64 rng{
            static_cast<std::uint64_t>(options.get_int("mutate-seed"))};
        const Vertex n = instance.vertex_count();
        std::uniform_int_distribution<Vertex> pick{0, n - 1};
        const auto batch_ops =
            static_cast<int>(options.get_int("mutate-batch"));
        const double remove_frac =
            options.get_double("mutate-remove-frac");
        const auto compact_every =
            static_cast<int>(options.get_int("mutate-compact-every"));
        const double pause_ms = options.get_double("mutate-pause-ms");
        std::vector<Edge> inserted;
        for (int b = 0; b < mutate_batches; ++b) {
          std::vector<EdgeOp> ops;
          ops.reserve(static_cast<std::size_t>(batch_ops));
          const int removes =
              !inserted.empty()
                  ? static_cast<int>(batch_ops * remove_frac)
                  : 0;
          for (int i = 0; i < batch_ops - removes; ++i) {
            const Vertex u = pick(rng);
            Vertex v = pick(rng);
            while (v == u) v = pick(rng);
            ops.push_back(EdgeOp::insert(u, v));
            inserted.push_back(Edge{u, v});
          }
          for (int i = 0; i < removes && !inserted.empty(); ++i) {
            std::uniform_int_distribution<std::size_t> pick_edge{
                0, inserted.size() - 1};
            const std::size_t at = pick_edge(rng);
            ops.push_back(EdgeOp::remove(inserted[at].u, inserted[at].v));
            inserted.erase(inserted.begin() +
                           static_cast<std::ptrdiff_t>(at));
          }
          mutable_graph->apply(ops);
          mutate_ops += ops.size();
          if (compact_every > 0 && (b + 1) % compact_every == 0)
            mutable_graph->compact();
          if (pause_ms > 0.0)
            std::this_thread::sleep_for(std::chrono::duration<double,
                                        std::milli>{pause_ms});
        }
      }};
    }

    serve::LoadGenConfig load;
    load.clients = static_cast<std::size_t>(options.get_int("serve-clients"));
    load.queries_per_client =
        static_cast<std::size_t>(options.get_int("serve-queries"));
    load.seed = static_cast<std::uint64_t>(options.get_int("serve-seed"));
    load.zipf_theta = options.get_double("serve-zipf");
    const std::string arrival = options.get_string("serve-arrival");
    const double burst_duty = options.get_double("serve-burst");
    if (arrival == "burst" || burst_duty > 0.0) {
      load.arrival = serve::ArrivalPattern::Burst;
      if (burst_duty > 0.0) load.burst_duty = burst_duty;
    } else if (arrival == "diurnal") {
      load.arrival = serve::ArrivalPattern::Diurnal;
    } else if (arrival != "closed") {
      std::fprintf(stderr, "unknown --serve-arrival '%s'\n", arrival.c_str());
      return 1;
    }
    load.period_ms = options.get_double("serve-period-ms");
    load.think_ms = options.get_double("serve-think-ms");
    load.tenants = static_cast<std::size_t>(options.get_int("serve-tenants"));
    load.high_priority_clients =
        static_cast<std::size_t>(options.get_int("serve-high-clients"));
    load.max_retries =
        static_cast<std::size_t>(options.get_int("serve-retries"));
    load.options.batchable = max_batch > 1;
    const serve::LoadGenReport report =
        serve::run_load(engine, instance.vertex_count(), load);
    if (mutator.joinable()) mutator.join();
    engine.shutdown();
    const serve::EngineStats stats = engine.stats();
    const serve::ResultCacheStats cache = engine.cache_stats();
    const std::uint64_t cache_lookups = cache.hits + cache.misses;
    const double cache_hit_rate =
        cache_lookups > 0
            ? static_cast<double>(cache.hits) /
                  static_cast<double>(cache_lookups)
            : 0.0;

    std::printf(
        "serve_planner: %s\nserve_arrival: %s\nserve_zipf: %.2f\n"
        "serve_clients: %zu\nserve_queries: %llu\nserve_seconds: %.3f\n"
        "serve_qps: %.2f\nserve_offered_qps: %.2f\n"
        "serve_latency_ms_mean: %.3f\nserve_latency_ms_p50: %.3f\n"
        "serve_latency_ms_p95: %.3f\nserve_latency_ms_p99: %.3f\n"
        "serve_done: %llu\nserve_failed: %llu\nserve_cancelled: %llu\n"
        "serve_deadline_expired: %llu\nserve_rejected: %llu\n"
        "serve_batches: %llu\nserve_batched_queries: %llu\n"
        "serve_session_queries: %llu\n",
        serve::to_string(engine_config.planner),
        serve::to_string(load.arrival), load.zipf_theta,
        load.clients, static_cast<unsigned long long>(report.issued),
        report.seconds, report.qps, report.offered_qps, report.mean_ms,
        report.p50_ms, report.p95_ms, report.p99_ms,
        static_cast<unsigned long long>(report.done),
        static_cast<unsigned long long>(report.failed),
        static_cast<unsigned long long>(report.cancelled),
        static_cast<unsigned long long>(report.deadline_expired),
        static_cast<unsigned long long>(report.rejected),
        static_cast<unsigned long long>(stats.batches),
        static_cast<unsigned long long>(stats.batched_queries),
        static_cast<unsigned long long>(stats.session_queries));
    std::printf(
        "serve_retries: %llu\nserve_quota_rejected: %llu\n"
        "serve_cache_hits: %llu\nserve_cache_hit_rate: %.4f\n"
        "serve_cache_evictions: %llu\nserve_cache_bytes: %zu\n"
        "serve_high_issued: %llu\nserve_high_done: %llu\n"
        "serve_high_deadline_expired: %llu\n",
        static_cast<unsigned long long>(report.retries),
        static_cast<unsigned long long>(stats.quota_rejected),
        static_cast<unsigned long long>(stats.cache_hits), cache_hit_rate,
        static_cast<unsigned long long>(cache.evictions), cache.bytes,
        static_cast<unsigned long long>(report.high_issued),
        static_cast<unsigned long long>(report.high_done),
        static_cast<unsigned long long>(report.high_deadline_expired));
    if (mutable_graph) {
      const MutableGraphStats mg_stats = mutable_graph->stats();
      std::printf(
          "mutate_batches: %lld\nmutate_ops: %llu\n"
          "mutate_version: %llu\nmutate_compactions: %llu\n"
          "mutate_delta_inserts: %zu\nmutate_delta_removes: %zu\n"
          "mutate_delta_bytes: %llu\n"
          "serve_snapshots_published: %llu\n"
          "serve_cache_migrated: %llu\nserve_cache_dropped: %llu\n",
          static_cast<long long>(mutate_batches),
          static_cast<unsigned long long>(mutate_ops),
          static_cast<unsigned long long>(mg_stats.version),
          static_cast<unsigned long long>(mg_stats.compactions),
          mg_stats.delta_inserts, mg_stats.delta_removes,
          static_cast<unsigned long long>(mg_stats.delta_bytes),
          static_cast<unsigned long long>(stats.snapshots_published),
          static_cast<unsigned long long>(stats.cache_entries_migrated),
          static_cast<unsigned long long>(stats.cache_entries_dropped));
    }

    bool serve_exports_ok = true;
    if (!metrics_out.empty() &&
        !obs::write_metrics_json(obs::metrics(), metrics_out)) {
      std::fprintf(stderr, "failed to write metrics JSON to %s\n",
                   metrics_out.c_str());
      serve_exports_ok = false;
    }
    if (!metrics_csv.empty() &&
        !obs::write_metrics_csv(obs::metrics(), metrics_csv)) {
      std::fprintf(stderr, "failed to write metrics CSV to %s\n",
                   metrics_csv.c_str());
      serve_exports_ok = false;
    }
    // Every issued query must have reached a terminal state; failures are
    // the fault-containment path, not a runner error.
    const bool accounted = report.done + report.failed + report.cancelled +
                               report.deadline_expired + report.rejected ==
                           report.issued;
    return accounted && serve_exports_ok ? 0 : 1;
  }

  const BenchmarkRun run = run_graph500(config, pool);

  std::fputs(render_graph500_output(run.output).c_str(), stdout);
  std::printf("graph_dram_bytes: %s\ngraph_nvm_bytes: %s\n",
              format_bytes(run.graph_dram_bytes).c_str(),
              format_bytes(run.graph_nvm_bytes).c_str());
  if (run.graph_nvm_bytes > 0) {
    std::printf("chunk_format: %s\n",
                std::string(to_string(*chunk_format)).c_str());
    if (run.graph_nvm_raw_bytes > run.graph_nvm_bytes) {
      std::printf("graph_nvm_raw_bytes: %s\nnvm_compression_ratio: %.2f\n",
                  format_bytes(run.graph_nvm_raw_bytes).c_str(),
                  static_cast<double>(run.graph_nvm_raw_bytes) /
                      static_cast<double>(run.graph_nvm_bytes));
    }
  }
  if (run.nvm_io.requests > 0) {
    std::printf(
        "nvm_requests: %llu\nnvm_avgqu_sz: %.2f\nnvm_avgrq_sz: %.2f "
        "sectors\nnvm_await_ms: %.3f\nnvm_iops: %.0f\n"
        "nvm_bytes_per_edge: %.3f\n",
        static_cast<unsigned long long>(run.nvm_io.requests),
        run.nvm_io.avg_queue_length, run.nvm_io.avg_request_sectors,
        run.nvm_io.await_ms, run.nvm_io.iops,
        run.nvm_io.bytes_per_edge(run.traversed_edges));
  }
  if (run.nvm_io.read_errors + run.nvm_io.short_reads +
          run.nvm_io.corruptions + run.nvm_io.latency_spikes +
          run.nvm_io.retries >
      0) {
    std::printf(
        "nvm_read_errors: %llu\nnvm_short_reads: %llu\n"
        "nvm_corruptions: %llu\nnvm_latency_spikes: %llu\n"
        "nvm_retries: %llu\n",
        static_cast<unsigned long long>(run.nvm_io.read_errors),
        static_cast<unsigned long long>(run.nvm_io.short_reads),
        static_cast<unsigned long long>(run.nvm_io.corruptions),
        static_cast<unsigned long long>(run.nvm_io.latency_spikes),
        static_cast<unsigned long long>(run.nvm_io.retries));
  }
  std::printf("score (median TEPS): %s\n",
              format_teps(run.output.score()).c_str());

  bool exports_ok = true;
  if (!metrics_out.empty() &&
      !obs::write_metrics_json(obs::metrics(), metrics_out)) {
    std::fprintf(stderr, "failed to write metrics JSON to %s\n",
                 metrics_out.c_str());
    exports_ok = false;
  }
  if (!metrics_csv.empty() &&
      !obs::write_metrics_csv(obs::metrics(), metrics_csv)) {
    std::fprintf(stderr, "failed to write metrics CSV to %s\n",
                 metrics_csv.c_str());
    exports_ok = false;
  }
  if (!trace_out.empty() &&
      !obs::write_trace_json(trace_log, trace_out)) {
    std::fprintf(stderr, "failed to write trace JSON to %s\n",
                 trace_out.c_str());
    exports_ok = false;
  }
  return run.output.all_validated && exports_ok ? 0 : 1;
}
